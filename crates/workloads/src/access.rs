//! Access patterns: request sizes and spatial locality.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Request-size distribution, in 512-byte sectors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SizeModel {
    /// Every request the same length.
    Fixed(u32),
    /// Uniformly distributed in `[min, max]`.
    Uniform {
        /// Smallest size.
        min: u32,
        /// Largest size.
        max: u32,
    },
    /// A weighted choice over discrete sizes — how real traces look
    /// (4 KB pages, 8 KB database blocks, 64 KB scan units…).
    Choice(Vec<(u32, f64)>),
}

impl SizeModel {
    /// Draws a request length.
    ///
    /// # Panics
    ///
    /// Panics if the model is malformed (empty choice list, zero sizes,
    /// inverted uniform bounds).
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u32 {
        match self {
            Self::Fixed(n) => {
                assert!(*n > 0, "zero-sector request size");
                *n
            }
            Self::Uniform { min, max } => {
                assert!(*min > 0 && min <= max, "bad uniform bounds");
                rng.gen_range(*min..=*max)
            }
            Self::Choice(choices) => {
                assert!(!choices.is_empty(), "empty size choice");
                let total: f64 = choices.iter().map(|(_, w)| w).sum();
                let mut draw = rng.gen_range(0.0..total);
                for (size, w) in choices {
                    if draw < *w {
                        assert!(*size > 0, "zero-sector choice");
                        return *size;
                    }
                    draw -= w;
                }
                choices.last().expect("non-empty").0
            }
        }
    }

    /// Checks the model for the malformations [`Self::sample`] would
    /// panic on.
    ///
    /// # Errors
    ///
    /// Returns a message naming the defect: zero sizes, inverted
    /// uniform bounds, an empty choice list, or non-positive weights.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            Self::Fixed(n) => {
                if *n == 0 {
                    return Err("fixed size must be positive".into());
                }
            }
            Self::Uniform { min, max } => {
                if *min == 0 || min > max {
                    return Err(format!("bad uniform size bounds [{min}, {max}]"));
                }
            }
            Self::Choice(choices) => {
                if choices.is_empty() {
                    return Err("size choice list is empty".into());
                }
                for (size, weight) in choices {
                    if *size == 0 {
                        return Err("size choice contains a zero-sector entry".into());
                    }
                    if !weight.is_finite() || *weight <= 0.0 {
                        return Err(format!("size choice weight {weight} is not positive"));
                    }
                }
            }
        }
        Ok(())
    }

    /// Mean request length.
    pub fn mean(&self) -> f64 {
        match self {
            Self::Fixed(n) => *n as f64,
            Self::Uniform { min, max } => (*min as f64 + *max as f64) / 2.0,
            Self::Choice(choices) => {
                let total: f64 = choices.iter().map(|(_, w)| w).sum();
                choices
                    .iter()
                    .map(|(s, w)| *s as f64 * w / total)
                    .sum()
            }
        }
    }
}

/// A Zipf(θ) sampler over `n` ranked items, via the classical
/// inverse-CDF-over-harmonic-weights method (exact, O(log n) per draw
/// after an O(n) table build).
#[derive(Debug, Clone, PartialEq)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds a sampler over ranks `0..n` with skew `theta`
    /// (`theta = 0` is uniform; ~0.99 matches many storage traces).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is negative or non-finite; use
    /// [`Self::try_new`] to handle those as errors.
    pub fn new(n: usize, theta: f64) -> Self {
        Self::try_new(n, theta).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`Self::new`].
    ///
    /// # Errors
    ///
    /// Rejects `n == 0` and a negative or non-finite `theta`.
    pub fn try_new(n: usize, theta: f64) -> Result<Self, String> {
        if n == 0 {
            return Err("zipf over zero items".into());
        }
        if theta < 0.0 || !theta.is_finite() {
            return Err(format!("zipf skew {theta} must be non-negative and finite"));
        }
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 1..=n {
            acc += 1.0 / (rank as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Ok(Self { cdf })
    }

    /// Draws a rank in `0..n` (0 = most popular).
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Always false: the constructor rejects zero items.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Spatial/temporal access profile of one workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccessProfile {
    /// Fraction of requests that are reads.
    pub read_fraction: f64,
    /// Fraction of requests that continue exactly where the previous
    /// request on the same device ended (sequential runs).
    pub sequential_fraction: f64,
    /// Request-size distribution.
    pub size: SizeModel,
    /// Number of equal-size regions the device is divided into for the
    /// skewed (Zipf) random component.
    pub hot_regions: usize,
    /// Zipf skew over those regions (0 = uniform).
    pub zipf_theta: f64,
}

impl AccessProfile {
    /// Validates the profile.
    ///
    /// # Errors
    ///
    /// Returns a message naming the bad field.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.read_fraction) {
            return Err("read_fraction outside [0,1]".into());
        }
        if !(0.0..=1.0).contains(&self.sequential_fraction) {
            return Err("sequential_fraction outside [0,1]".into());
        }
        if self.hot_regions == 0 {
            return Err("hot_regions must be positive".into());
        }
        if self.zipf_theta < 0.0 || !self.zipf_theta.is_finite() {
            return Err("zipf_theta must be non-negative and finite".into());
        }
        self.size
            .validate()
            .map_err(|e| format!("size model: {e}"))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn size_models_sample_in_range() {
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(SizeModel::Fixed(8).sample(&mut rng), 8);
        for _ in 0..1_000 {
            let s = SizeModel::Uniform { min: 4, max: 64 }.sample(&mut rng);
            assert!((4..=64).contains(&s));
        }
        let choice = SizeModel::Choice(vec![(8, 0.7), (64, 0.3)]);
        for _ in 0..100 {
            let s = choice.sample(&mut rng);
            assert!(s == 8 || s == 64);
        }
    }

    #[test]
    fn choice_weights_are_respected() {
        let mut rng = StdRng::seed_from_u64(11);
        let choice = SizeModel::Choice(vec![(8, 0.8), (64, 0.2)]);
        let n = 20_000;
        let small = (0..n)
            .filter(|_| choice.sample(&mut rng) == 8)
            .count();
        let frac = small as f64 / n as f64;
        assert!((frac - 0.8).abs() < 0.02, "got {frac}");
    }

    #[test]
    fn size_means() {
        assert_eq!(SizeModel::Fixed(16).mean(), 16.0);
        assert_eq!(SizeModel::Uniform { min: 8, max: 24 }.mean(), 16.0);
        let c = SizeModel::Choice(vec![(10, 1.0), (30, 1.0)]);
        assert_eq!(c.mean(), 20.0);
    }

    #[test]
    fn zipf_head_dominates_at_high_theta() {
        let z = ZipfSampler::new(1_000, 0.99);
        let mut rng = StdRng::seed_from_u64(2);
        let n = 50_000;
        let top10 = (0..n).filter(|_| z.sample(&mut rng) < 10).count();
        let frac = top10 as f64 / n as f64;
        assert!(frac > 0.25, "top-10 of 1000 regions got {frac}");
    }

    #[test]
    fn zipf_theta_zero_is_uniform() {
        let z = ZipfSampler::new(100, 0.0);
        let mut rng = StdRng::seed_from_u64(9);
        let n = 100_000;
        let first_half = (0..n).filter(|_| z.sample(&mut rng) < 50).count();
        let frac = first_half as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.01, "got {frac}");
    }

    #[test]
    fn zipf_samples_cover_range() {
        let z = ZipfSampler::new(10, 0.9);
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            seen[z.sample(&mut rng)] = true;
        }
        assert!(seen.iter().all(|s| *s), "all ranks reachable");
    }

    #[test]
    fn profile_validation() {
        let good = AccessProfile {
            read_fraction: 0.6,
            sequential_fraction: 0.3,
            size: SizeModel::Fixed(8),
            hot_regions: 100,
            zipf_theta: 0.9,
        };
        assert!(good.validate().is_ok());

        let mut bad = good.clone();
        bad.read_fraction = 1.5;
        assert!(bad.validate().is_err());

        let mut bad = good.clone();
        bad.hot_regions = 0;
        assert!(bad.validate().is_err());

        // A malformed size model now fails profile validation instead
        // of panicking later in sampling.
        let mut bad = good.clone();
        bad.size = SizeModel::Uniform { min: 64, max: 4 };
        assert!(bad.validate().unwrap_err().contains("size model"));
    }

    #[test]
    fn size_model_validation_catches_each_malformation() {
        assert!(SizeModel::Fixed(8).validate().is_ok());
        assert!(SizeModel::Fixed(0).validate().is_err());
        assert!(SizeModel::Uniform { min: 4, max: 64 }.validate().is_ok());
        assert!(SizeModel::Uniform { min: 0, max: 4 }.validate().is_err());
        assert!(SizeModel::Uniform { min: 8, max: 4 }.validate().is_err());
        assert!(SizeModel::Choice(vec![(8, 0.5)]).validate().is_ok());
        assert!(SizeModel::Choice(vec![]).validate().is_err());
        assert!(SizeModel::Choice(vec![(0, 0.5)]).validate().is_err());
        assert!(SizeModel::Choice(vec![(8, 0.0)]).validate().is_err());
        assert!(SizeModel::Choice(vec![(8, f64::NAN)]).validate().is_err());
    }

    #[test]
    fn zipf_try_new_rejects_what_new_panics_on() {
        assert!(ZipfSampler::try_new(0, 0.9).is_err());
        assert!(ZipfSampler::try_new(10, -0.1).is_err());
        assert!(ZipfSampler::try_new(10, f64::INFINITY).is_err());
        assert_eq!(ZipfSampler::try_new(10, 0.9).unwrap(), ZipfSampler::new(10, 0.9));
    }
}
