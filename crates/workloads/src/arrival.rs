//! Arrival processes.

use rand::Rng;
use serde::{Deserialize, Serialize};
use units::Seconds;

/// How request inter-arrival times are drawn.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalModel {
    /// Poisson arrivals at a constant rate (requests per second).
    Poisson {
        /// Mean arrival rate, requests/s.
        rate: f64,
    },
    /// A two-state on/off modulated Poisson process: bursts of elevated
    /// rate separated by quieter periods — the shape of mail-server and
    /// OLTP traffic.
    Bursty {
        /// Rate during the quiet state, requests/s.
        base_rate: f64,
        /// Multiplier applied during bursts.
        burst_factor: f64,
        /// Mean burst duration, seconds.
        burst_len: f64,
        /// Mean quiet duration, seconds.
        quiet_len: f64,
    },
}

impl ArrivalModel {
    /// Long-run mean arrival rate, requests/s.
    pub fn mean_rate(&self) -> f64 {
        match *self {
            Self::Poisson { rate } => rate,
            Self::Bursty {
                base_rate,
                burst_factor,
                burst_len,
                quiet_len,
            } => {
                let cycle = burst_len + quiet_len;
                base_rate * (quiet_len + burst_factor * burst_len) / cycle
            }
        }
    }

    /// The same process rescaled so its long-run mean rate equals
    /// `target` requests/s. Burst shape (factor and state durations) is
    /// preserved — only the intensity moves, which works because the
    /// mean is linear in the base rate. Lets experiments offer the same
    /// load to differently-shaped preset workloads.
    ///
    /// # Panics
    ///
    /// Panics if `target` is not positive and finite.
    #[must_use]
    pub fn with_mean_rate(self, target: f64) -> Self {
        assert!(
            target > 0.0 && target.is_finite(),
            "target rate must be positive and finite, got {target}"
        );
        let scale = target / self.mean_rate();
        match self {
            Self::Poisson { rate } => Self::Poisson { rate: rate * scale },
            Self::Bursty {
                base_rate,
                burst_factor,
                burst_len,
                quiet_len,
            } => Self::Bursty {
                base_rate: base_rate * scale,
                burst_factor,
                burst_len,
                quiet_len,
            },
        }
    }
}

/// Stateful arrival-time stream.
#[derive(Debug, Clone)]
pub struct ArrivalStream {
    model: ArrivalModel,
    now: f64,
    /// Remaining time in the current burst/quiet state (bursty only).
    state_left: f64,
    in_burst: bool,
    started: bool,
}

impl ArrivalStream {
    /// Starts a stream at time zero.
    pub fn new(model: ArrivalModel) -> Self {
        Self {
            model,
            now: 0.0,
            state_left: 0.0,
            in_burst: false,
            started: false,
        }
    }

    /// Draws the next arrival time.
    pub fn next_arrival<R: Rng>(&mut self, rng: &mut R) -> Seconds {
        match self.model {
            ArrivalModel::Poisson { rate } => {
                self.now += exponential(rng, rate);
            }
            ArrivalModel::Bursty {
                base_rate,
                burst_factor,
                burst_len,
                quiet_len,
            } => {
                if !self.started {
                    // Stationary start: occupancy is proportional to the
                    // mean state durations, and the residual of an
                    // exponential state is again exponential.
                    self.started = true;
                    self.in_burst = rng.gen_bool(burst_len / (burst_len + quiet_len));
                    let mean = if self.in_burst { burst_len } else { quiet_len };
                    self.state_left = exponential(rng, 1.0 / mean);
                }
                // Piecewise Poisson: a gap drawn at the current state's
                // rate is only valid while that state lasts. A draw that
                // crosses the boundary advances the clock to the boundary
                // and redraws at the new rate (memorylessness makes the
                // fresh draw exact).
                loop {
                    if self.state_left <= 0.0 {
                        self.in_burst = !self.in_burst;
                        let mean = if self.in_burst { burst_len } else { quiet_len };
                        self.state_left = exponential(rng, 1.0 / mean);
                    }
                    let rate = if self.in_burst {
                        base_rate * burst_factor
                    } else {
                        base_rate
                    };
                    let gap = exponential(rng, rate);
                    if gap <= self.state_left {
                        self.state_left -= gap;
                        self.now += gap;
                        break;
                    }
                    self.now += self.state_left;
                    self.state_left = 0.0;
                }
            }
        }
        Seconds::new(self.now)
    }
}

/// Complete dynamic state of an [`ArrivalStream`], captured for
/// checkpointing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArrivalStreamState {
    model: ArrivalModel,
    now: f64,
    state_left: f64,
    in_burst: bool,
    started: bool,
}

impl ArrivalStream {
    /// Captures the stream's position (clock and burst phase) together
    /// with its model.
    pub fn capture_state(&self) -> ArrivalStreamState {
        ArrivalStreamState {
            model: self.model,
            now: self.now,
            state_left: self.state_left,
            in_burst: self.in_burst,
            started: self.started,
        }
    }

    /// Rebuilds a stream mid-flight from a captured state.
    pub fn restore_state(state: ArrivalStreamState) -> Self {
        Self {
            model: state.model,
            now: state.now,
            state_left: state.state_left,
            in_burst: state.in_burst,
            started: state.started,
        }
    }

    /// Rescales the model's long-run mean rate by `factor` in place,
    /// keeping the clock and burst phase — the "what if traffic grew
    /// 30%?" perturbation applied to a live stream.
    ///
    /// # Panics
    ///
    /// Panics unless `factor` is positive and finite (via
    /// [`ArrivalModel::with_mean_rate`]).
    pub fn scale_rate(&mut self, factor: f64) {
        let target = self.model.mean_rate() * factor;
        self.model = self.model.with_mean_rate(target);
    }
}

/// Draws an exponential variate with the given rate.
fn exponential<R: Rng>(rng: &mut R, rate: f64) -> f64 {
    debug_assert!(rate > 0.0, "exponential rate must be positive");
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -u.ln() / rate
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn poisson_rate_converges() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut s = ArrivalStream::new(ArrivalModel::Poisson { rate: 100.0 });
        let mut last = Seconds::ZERO;
        let n = 20_000;
        for _ in 0..n {
            last = s.next_arrival(&mut rng);
        }
        let measured = n as f64 / last.get();
        assert!((measured - 100.0).abs() < 3.0, "rate {measured:.1}");
    }

    #[test]
    fn bursty_mean_rate_formula() {
        let m = ArrivalModel::Bursty {
            base_rate: 100.0,
            burst_factor: 5.0,
            burst_len: 1.0,
            quiet_len: 4.0,
        };
        // (4*100 + 1*500) / 5 = 180.
        assert!((m.mean_rate() - 180.0).abs() < 1e-9);
    }

    #[test]
    fn bursty_empirical_rate_near_mean() {
        let m = ArrivalModel::Bursty {
            base_rate: 50.0,
            burst_factor: 4.0,
            burst_len: 2.0,
            quiet_len: 6.0,
        };
        let mut rng = StdRng::seed_from_u64(7);
        let mut s = ArrivalStream::new(m);
        let n = 50_000;
        let mut last = Seconds::ZERO;
        for _ in 0..n {
            last = s.next_arrival(&mut rng);
        }
        let measured = n as f64 / last.get();
        assert!(
            (measured - m.mean_rate()).abs() / m.mean_rate() < 0.1,
            "rate {measured:.1} vs mean {:.1}",
            m.mean_rate()
        );
    }

    #[test]
    fn rescaling_hits_the_target_mean_and_keeps_the_shape() {
        let m = ArrivalModel::Bursty {
            base_rate: 100.0,
            burst_factor: 5.0,
            burst_len: 1.0,
            quiet_len: 4.0,
        };
        let scaled = m.with_mean_rate(90.0);
        assert!((scaled.mean_rate() - 90.0).abs() < 1e-9);
        match scaled {
            ArrivalModel::Bursty {
                burst_factor,
                burst_len,
                quiet_len,
                ..
            } => {
                assert_eq!(burst_factor, 5.0);
                assert_eq!(burst_len, 1.0);
                assert_eq!(quiet_len, 4.0);
            }
            ArrivalModel::Poisson { .. } => panic!("shape must be preserved"),
        }
        let p = ArrivalModel::Poisson { rate: 10.0 }.with_mean_rate(360.0);
        assert!((p.mean_rate() - 360.0).abs() < 1e-9);
    }

    #[test]
    fn arrivals_are_strictly_increasing() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut s = ArrivalStream::new(ArrivalModel::Poisson { rate: 1_000.0 });
        let mut prev = -1.0;
        for _ in 0..1_000 {
            let t = s.next_arrival(&mut rng).get();
            assert!(t > prev);
            prev = t;
        }
    }
}
