//! Trace characterization.
//!
//! §5.1 describes each commercial workload by a handful of statistics —
//! request count, read/write mix, seek intensity, arrival behaviour.
//! This module computes the same statistics from any [`Request`] stream,
//! so synthetic traces can be validated against their targets and
//! foreign traces (e.g. imported through [`crate::ascii`]) can be
//! summarized before simulation.

use disksim::Request;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use units::Seconds;

/// Summary statistics of a trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceProfile {
    /// Number of requests.
    pub requests: usize,
    /// Devices addressed.
    pub devices: u32,
    /// Fraction of reads.
    pub read_fraction: f64,
    /// Mean request length in sectors.
    pub mean_sectors: f64,
    /// Trace duration (first to last arrival).
    pub duration: Seconds,
    /// Mean arrival rate, requests per second.
    pub mean_rate: f64,
    /// Coefficient of variation of inter-arrival times (1 ≈ Poisson,
    /// larger = burstier).
    pub interarrival_cv: f64,
    /// Fraction of requests that continue exactly where the previous
    /// request *on the same device* ended.
    pub sequential_fraction: f64,
    /// Mean LBA jump (sectors) between consecutive same-device requests
    /// — the trace-level proxy for seek intensity.
    pub mean_jump_sectors: f64,
}

/// Computes the profile of a trace. Returns `None` for an empty trace
/// (there is nothing to characterize).
pub fn analyze(trace: &[Request]) -> Option<TraceProfile> {
    if trace.is_empty() {
        return None;
    }
    let n = trace.len();
    let reads = trace.iter().filter(|r| r.kind.is_read()).count();
    let total_sectors: u64 = trace.iter().map(|r| r.sectors as u64).sum();
    let devices = trace.iter().map(|r| r.device).max().unwrap_or(0) + 1;

    // Arrival statistics (the trace may be mildly out of order; sort a
    // copy of the timestamps).
    let mut arrivals: Vec<f64> = trace.iter().map(|r| r.arrival.get()).collect();
    arrivals.sort_by(f64::total_cmp);
    let duration = arrivals.last().expect("non-empty") - arrivals[0];
    let mean_rate = if duration > 0.0 {
        (n - 1).max(1) as f64 / duration
    } else {
        0.0
    };
    let (mut gap_sum, mut gap_sq, mut gaps) = (0.0, 0.0, 0u64);
    for w in arrivals.windows(2) {
        let g = w[1] - w[0];
        gap_sum += g;
        gap_sq += g * g;
        gaps += 1;
    }
    let interarrival_cv = if gaps > 1 && gap_sum > 0.0 {
        let mean = gap_sum / gaps as f64;
        let var = (gap_sq / gaps as f64 - mean * mean).max(0.0);
        var.sqrt() / mean
    } else {
        0.0
    };

    // Spatial statistics, per device.
    let mut last_end: HashMap<u32, u64> = HashMap::new();
    let mut sequential = 0u64;
    let mut jump_sum = 0.0;
    let mut jumps = 0u64;
    for r in trace {
        if let Some(&end) = last_end.get(&r.device) {
            jumps += 1;
            jump_sum += r.lba.abs_diff(end) as f64;
            if r.lba == end {
                sequential += 1;
            }
        }
        last_end.insert(r.device, r.end_lba());
    }

    Some(TraceProfile {
        requests: n,
        devices,
        read_fraction: reads as f64 / n as f64,
        mean_sectors: total_sectors as f64 / n as f64,
        duration: Seconds::new(duration),
        mean_rate,
        interarrival_cv,
        sequential_fraction: if jumps == 0 {
            0.0
        } else {
            sequential as f64 / jumps as f64
        },
        mean_jump_sectors: if jumps == 0 { 0.0 } else { jump_sum / jumps as f64 },
    })
}

impl core::fmt::Display for TraceProfile {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{} reqs over {} devices, {:.0}% reads, mean {:.1} sectors, \
             {:.0} req/s (CV {:.2}), {:.0}% sequential, mean jump {:.0} sectors",
            self.requests,
            self.devices,
            self.read_fraction * 100.0,
            self.mean_sectors,
            self.mean_rate,
            self.interarrival_cv,
            self.sequential_fraction * 100.0,
            self.mean_jump_sectors
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::{openmail, presets, tpch};

    #[test]
    fn empty_trace_is_none() {
        assert!(analyze(&[]).is_none());
    }

    #[test]
    fn presets_match_their_declared_mix() {
        for preset in presets() {
            let trace = preset.generate(20_000, 5).unwrap();
            let p = analyze(&trace).unwrap();
            assert_eq!(p.requests, 20_000);
            assert_eq!(p.devices, preset.logical_devices());
            // Read fraction tracks the profile within sampling noise.
            assert!(
                (p.read_fraction - preset.profile.read_fraction).abs() < 0.02,
                "{}: {:.2} vs {:.2}",
                preset.name,
                p.read_fraction,
                preset.profile.read_fraction
            );
            // Mean size tracks the size model.
            let want = preset.profile.size.mean();
            assert!(
                (p.mean_sectors - want).abs() / want < 0.05,
                "{}: {:.1} vs {:.1}",
                preset.name,
                p.mean_sectors,
                want
            );
            // Arrival rate tracks the arrival model.
            let want_rate = preset.arrivals.mean_rate();
            assert!(
                (p.mean_rate - want_rate).abs() / want_rate < 0.15,
                "{}: {:.0} vs {:.0} req/s",
                preset.name,
                p.mean_rate,
                want_rate
            );
        }
    }

    #[test]
    fn tpch_is_far_more_sequential_than_openmail() {
        let seq = |p: crate::WorkloadPreset| {
            analyze(&p.generate(10_000, 3).unwrap())
                .unwrap()
                .sequential_fraction
        };
        let tpch_seq = seq(tpch());
        let openmail_seq = seq(openmail());
        assert!(
            tpch_seq > 2.0 * openmail_seq,
            "TPC-H {tpch_seq:.2} vs OpenMail {openmail_seq:.2}"
        );
    }

    #[test]
    fn burstiness_shows_in_interarrival_cv() {
        // OpenMail's on/off arrivals are burstier than TPC-C's Poisson.
        let cv = |p: crate::WorkloadPreset| {
            analyze(&p.generate(20_000, 3).unwrap())
                .unwrap()
                .interarrival_cv
        };
        let bursty = cv(openmail());
        let poisson = cv(crate::presets::tpcc());
        assert!((poisson - 1.0).abs() < 0.1, "Poisson CV ~1, got {poisson:.2}");
        assert!(bursty > 1.1, "bursty CV should exceed 1, got {bursty:.2}");
    }

    #[test]
    fn display_mentions_the_essentials() {
        let trace = tpch().generate(500, 1).unwrap();
        let text = analyze(&trace).unwrap().to_string();
        assert!(text.contains("500 reqs"));
        assert!(text.contains("reads"));
        assert!(text.contains("sequential"));
    }
}
