//! Trace serialization: newline-delimited JSON, one request per line.
//!
//! The format keeps multi-million-request traces streamable and
//! diff-friendly, and lets the experiment binaries persist the exact
//! workloads they measured.

use disksim::Request;
use std::io::{self, BufRead, Write};

/// Writes a trace as JSON lines.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_trace<W: Write>(mut writer: W, trace: &[Request]) -> io::Result<()> {
    for request in trace {
        let line = serde_json::to_string(request).map_err(io::Error::other)?;
        writer.write_all(line.as_bytes())?;
        writer.write_all(b"\n")?;
    }
    Ok(())
}

/// Reads a trace written by [`write_trace`]. Blank lines are ignored.
///
/// # Errors
///
/// Propagates I/O errors; a malformed line fails with an
/// `InvalidData` error naming its 1-based line number.
pub fn read_trace<R: BufRead>(reader: R) -> io::Result<Vec<Request>> {
    let mut out = Vec::new();
    for (index, line) in reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let request = serde_json::from_str(&line).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("trace line {}: {e}", index + 1),
            )
        })?;
        out.push(request);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::openmail;

    #[test]
    fn round_trip_preserves_trace() {
        let trace = openmail().generate(250, 5).unwrap();
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).unwrap();
        let back = read_trace(buf.as_slice()).unwrap();
        assert_eq!(trace, back);
    }

    #[test]
    fn blank_lines_are_skipped() {
        let trace = openmail().generate(3, 5).unwrap();
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).unwrap();
        buf.extend_from_slice(b"\n\n");
        let back = read_trace(buf.as_slice()).unwrap();
        assert_eq!(back.len(), 3);
    }

    #[test]
    fn interior_blank_lines_do_not_shift_parsing() {
        let trace = openmail().generate(4, 5).unwrap();
        let mut buf = Vec::new();
        for (i, r) in trace.iter().enumerate() {
            write_trace(&mut buf, std::slice::from_ref(r)).unwrap();
            // Blank padding between records, with stray whitespace.
            buf.extend_from_slice(if i % 2 == 0 { b"\n" } else { b"   \n" });
        }
        let back = read_trace(buf.as_slice()).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn garbage_is_an_error_naming_the_line() {
        let trace = openmail().generate(2, 5).unwrap();
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).unwrap();
        buf.extend_from_slice(b"\nnot json\n");
        let err = read_trace(buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // Two records plus one blank line put the garbage on line 4.
        assert!(
            err.to_string().contains("line 4"),
            "error should name the offending line: {err}"
        );
    }

    mod round_trip_props {
        use super::*;
        use disksim::RequestKind;
        use proptest::prelude::*;
        use units::Seconds;

        fn arb_request() -> impl Strategy<Value = Request> {
            (
                any::<u64>(),
                0.0f64..1.0e6,
                0u32..64,
                any::<u64>(),
                1u32..4_096,
                prop_oneof![Just(RequestKind::Read), Just(RequestKind::Write)],
            )
                .prop_map(|(id, arrival, device, lba, sectors, kind)| {
                    Request::new(id, Seconds::new(arrival), device, lba, sectors, kind)
                })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            #[test]
            fn write_then_read_is_identity(trace in prop::collection::vec(arb_request(), 0..64)) {
                let mut buf = Vec::new();
                write_trace(&mut buf, &trace).unwrap();
                let back = read_trace(buf.as_slice()).unwrap();
                prop_assert_eq!(back, trace);
            }

            #[test]
            fn blank_padding_never_changes_the_result(
                trace in prop::collection::vec(arb_request(), 1..32),
                pad in prop::collection::vec(0usize..3, 1..32),
            ) {
                let mut buf = Vec::new();
                for (i, r) in trace.iter().enumerate() {
                    write_trace(&mut buf, std::slice::from_ref(r)).unwrap();
                    for _ in 0..pad[i % pad.len()] {
                        buf.extend_from_slice(b"\n");
                    }
                }
                let back = read_trace(buf.as_slice()).unwrap();
                prop_assert_eq!(back, trace);
            }
        }
    }
}
