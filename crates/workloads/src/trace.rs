//! Trace serialization: newline-delimited JSON, one request per line.
//!
//! The format keeps multi-million-request traces streamable and
//! diff-friendly, and lets the experiment binaries persist the exact
//! workloads they measured.

use disksim::Request;
use std::io::{self, BufRead, Write};

/// Writes a trace as JSON lines.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_trace<W: Write>(mut writer: W, trace: &[Request]) -> io::Result<()> {
    for request in trace {
        let line = serde_json::to_string(request).map_err(io::Error::other)?;
        writer.write_all(line.as_bytes())?;
        writer.write_all(b"\n")?;
    }
    Ok(())
}

/// Reads a trace written by [`write_trace`]. Blank lines are ignored.
///
/// # Errors
///
/// Propagates I/O errors and malformed-line parse errors.
pub fn read_trace<R: BufRead>(reader: R) -> io::Result<Vec<Request>> {
    let mut out = Vec::new();
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        out.push(serde_json::from_str(&line).map_err(io::Error::other)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::openmail;

    #[test]
    fn round_trip_preserves_trace() {
        let trace = openmail().generate(250, 5).unwrap();
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).unwrap();
        let back = read_trace(buf.as_slice()).unwrap();
        assert_eq!(trace, back);
    }

    #[test]
    fn blank_lines_are_skipped() {
        let trace = openmail().generate(3, 5).unwrap();
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).unwrap();
        buf.extend_from_slice(b"\n\n");
        let back = read_trace(buf.as_slice()).unwrap();
        assert_eq!(back.len(), 3);
    }

    #[test]
    fn garbage_is_an_error() {
        let result = read_trace("not json\n".as_bytes());
        assert!(result.is_err());
    }
}
