//! DiskSim-compatible ASCII trace format.
//!
//! The original DiskSim environment (which the paper drives its §5.1
//! experiments with) consumes a five-column ASCII default format:
//!
//! ```text
//! <arrival-time-ms> <device> <block-number> <request-size-blocks> <flags>
//! ```
//!
//! with bit 0 of `flags` set for reads. Supporting it means traces can
//! travel between this simulator and DiskSim-era tooling.

use disksim::{Request, RequestKind};
use std::io::{self, BufRead, Write};
use units::Seconds;

/// Flag bit marking a read in the DiskSim default format.
const READ_FLAG: u32 = 0x1;

/// Writes requests in the DiskSim default ASCII format.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_ascii_trace<W: Write>(mut writer: W, trace: &[Request]) -> io::Result<()> {
    for r in trace {
        let flags = if r.kind.is_read() { READ_FLAG } else { 0 };
        writeln!(
            writer,
            "{:.6} {} {} {} {}",
            r.arrival.to_millis(),
            r.device,
            r.lba,
            r.sectors,
            flags
        )?;
    }
    Ok(())
}

/// Reads a DiskSim default ASCII trace. Blank lines and `#` comments are
/// skipped; request ids are assigned in file order.
///
/// # Errors
///
/// Returns `InvalidData` for malformed lines (wrong column count,
/// non-numeric fields, zero-length requests).
pub fn read_ascii_trace<R: BufRead>(reader: R) -> io::Result<Vec<Request>> {
    let mut out = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = trimmed.split_whitespace().collect();
        if fields.len() != 5 {
            return Err(bad_line(lineno, "expected 5 columns"));
        }
        let arrival_ms: f64 = fields[0]
            .parse()
            .map_err(|_| bad_line(lineno, "bad arrival time"))?;
        let device: u32 = fields[1]
            .parse()
            .map_err(|_| bad_line(lineno, "bad device number"))?;
        let lba: u64 = fields[2]
            .parse()
            .map_err(|_| bad_line(lineno, "bad block number"))?;
        let sectors: u32 = fields[3]
            .parse()
            .map_err(|_| bad_line(lineno, "bad request size"))?;
        let flags: u32 = fields[4]
            .parse()
            .map_err(|_| bad_line(lineno, "bad flags"))?;
        if sectors == 0 {
            return Err(bad_line(lineno, "zero-length request"));
        }
        if !arrival_ms.is_finite() || arrival_ms < 0.0 {
            return Err(bad_line(lineno, "negative or non-finite arrival"));
        }
        let kind = if flags & READ_FLAG != 0 {
            RequestKind::Read
        } else {
            RequestKind::Write
        };
        out.push(Request::new(
            out.len() as u64,
            Seconds::from_millis(arrival_ms),
            device,
            lba,
            sectors,
            kind,
        ));
    }
    Ok(out)
}

fn bad_line(lineno: usize, what: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("trace line {}: {what}", lineno + 1),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::search_engine;

    #[test]
    fn round_trip_preserves_semantics() {
        let trace = search_engine().generate(300, 9).unwrap();
        let mut buf = Vec::new();
        write_ascii_trace(&mut buf, &trace).unwrap();
        let back = read_ascii_trace(buf.as_slice()).unwrap();
        assert_eq!(trace.len(), back.len());
        for (a, b) in trace.iter().zip(&back) {
            assert_eq!(a.device, b.device);
            assert_eq!(a.lba, b.lba);
            assert_eq!(a.sectors, b.sectors);
            assert_eq!(a.kind, b.kind);
            // Millisecond text retains microsecond-level fidelity.
            assert!((a.arrival.to_millis() - b.arrival.to_millis()).abs() < 1e-5);
        }
    }

    #[test]
    fn parses_hand_written_lines_with_comments() {
        let text = "# a DiskSim-style trace\n\
                    0.000000 0 1024 8 1\n\
                    \n\
                    5.500000 1 2048 16 0\n";
        let trace = read_ascii_trace(text.as_bytes()).unwrap();
        assert_eq!(trace.len(), 2);
        assert!(trace[0].kind.is_read());
        assert_eq!(trace[1].kind, RequestKind::Write);
        assert_eq!(trace[1].device, 1);
        assert!((trace[1].arrival.to_millis() - 5.5).abs() < 1e-12);
    }

    #[test]
    fn malformed_lines_are_rejected_with_location() {
        for bad in [
            "1.0 0 10 8",          // 4 columns
            "x 0 10 8 1",          // bad time
            "1.0 0 10 0 1",        // zero length
            "-1.0 0 10 8 1",       // negative time
            "1.0 0 10 8 1 extra",  // 6 columns
        ] {
            let err = read_ascii_trace(bad.as_bytes()).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{bad}");
            assert!(err.to_string().contains("line 1"), "{bad}: {err}");
        }
    }

    #[test]
    fn ids_are_assigned_in_file_order() {
        let text = "1.0 0 10 8 1\n2.0 0 20 8 1\n3.0 0 30 8 1\n";
        let trace = read_ascii_trace(text.as_bytes()).unwrap();
        let ids: Vec<u64> = trace.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }
}
