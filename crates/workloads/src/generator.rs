//! The trace generator: composes an arrival stream with an access
//! profile over one or more devices.

use crate::access::{AccessProfile, ZipfSampler};
use crate::arrival::{ArrivalModel, ArrivalStream, ArrivalStreamState};
use disksim::{Request, RequestKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Per-device generator state: where the last sequential run ended and
/// the device's region popularity ranking.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct DeviceState {
    next_sequential_lba: u64,
    /// Permutation mapping Zipf rank -> region index, so each device has
    /// its own hot spots.
    region_of_rank: Vec<usize>,
}

/// Generates [`Request`] streams.
///
/// # Examples
///
/// ```
/// use workloads::{AccessProfile, ArrivalModel, SizeModel, TraceGenerator};
///
/// let profile = AccessProfile {
///     read_fraction: 0.7,
///     sequential_fraction: 0.2,
///     size: SizeModel::Fixed(16),
///     hot_regions: 64,
///     zipf_theta: 0.9,
/// };
/// let arrivals = ArrivalModel::Poisson { rate: 200.0 };
/// let gen = TraceGenerator::new(profile, arrivals, 4, 1_000_000).unwrap();
/// let trace = gen.generate(500, 7);
/// assert_eq!(trace.len(), 500);
/// ```
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    profile: AccessProfile,
    arrivals: ArrivalModel,
    devices: u32,
    sectors_per_device: u64,
}

impl TraceGenerator {
    /// Creates a generator over `devices` devices of
    /// `sectors_per_device` sectors each.
    ///
    /// # Errors
    ///
    /// Returns the profile's validation message, or an explanation when
    /// the device geometry is degenerate.
    pub fn new(
        profile: AccessProfile,
        arrivals: ArrivalModel,
        devices: u32,
        sectors_per_device: u64,
    ) -> Result<Self, String> {
        profile.validate()?;
        if devices == 0 {
            return Err("no devices".into());
        }
        if sectors_per_device < 1_024 {
            return Err("device too small to generate against".into());
        }
        Ok(Self {
            profile,
            arrivals,
            devices,
            sectors_per_device,
        })
    }

    /// The long-run arrival rate across all devices.
    pub fn mean_rate(&self) -> f64 {
        self.arrivals.mean_rate()
    }

    /// Generates `n` requests deterministically from `seed`.
    pub fn generate(&self, n: usize, seed: u64) -> Vec<Request> {
        let mut out = Vec::with_capacity(n);
        self.generate_into(n, seed, &mut out);
        out
    }

    /// Like [`Self::generate`], but clears and fills a caller-owned
    /// buffer — sweep loops evaluating many configurations reuse one
    /// trace allocation instead of building a fresh `Vec` per point.
    pub fn generate_into(&self, n: usize, seed: u64, out: &mut Vec<Request>) {
        let mut stream = self.stream(seed);
        out.clear();
        out.reserve(n);
        out.extend((0..n).map(|_| stream.next_request()));
    }

    /// Opens an incremental request stream seeded from `seed`. The
    /// stream draws exactly the requests [`Self::generate`] would, one
    /// at a time, and its state can be captured mid-flight for
    /// checkpointing.
    pub fn stream(&self, seed: u64) -> TraceStream {
        let mut rng = StdRng::seed_from_u64(seed);
        let zipf = ZipfSampler::try_new(self.profile.hot_regions, self.profile.zipf_theta)
            .expect("profile was validated at construction");
        let devices: Vec<DeviceState> = (0..self.devices)
            .map(|_| {
                let mut perm: Vec<usize> = (0..self.profile.hot_regions).collect();
                // Fisher-Yates with the seeded generator.
                for i in (1..perm.len()).rev() {
                    let j = rng.gen_range(0..=i);
                    perm.swap(i, j);
                }
                DeviceState {
                    next_sequential_lba: rng.gen_range(0..self.sectors_per_device / 2),
                    region_of_rank: perm,
                }
            })
            .collect();
        TraceStream {
            profile: self.profile.clone(),
            devices: self.devices,
            sectors_per_device: self.sectors_per_device,
            zipf,
            rng,
            device_states: devices,
            stream: ArrivalStream::new(self.arrivals),
            next_id: 0,
        }
    }
}

/// An endless, checkpointable request stream — the incremental
/// counterpart of [`TraceGenerator::generate`], drawing identical
/// requests in identical order for a given seed.
#[derive(Debug, Clone)]
pub struct TraceStream {
    profile: AccessProfile,
    devices: u32,
    sectors_per_device: u64,
    /// Pure function of the profile; rebuilt on restore.
    zipf: ZipfSampler,
    rng: StdRng,
    device_states: Vec<DeviceState>,
    stream: ArrivalStream,
    next_id: u64,
}

/// Complete dynamic state of a [`TraceStream`], captured for
/// checkpointing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceStreamState {
    profile: AccessProfile,
    devices: u32,
    sectors_per_device: u64,
    rng: [u64; 4],
    device_states: Vec<DeviceState>,
    arrivals: ArrivalStreamState,
    next_id: u64,
}

impl TraceStream {
    /// Draws the next request.
    pub fn next_request(&mut self) -> Request {
        let rng = &mut self.rng;
        let arrival = self.stream.next_arrival(rng);
        let device = rng.gen_range(0..self.devices);
        let state = &mut self.device_states[device as usize];
        let sectors = self.profile.size.sample(rng);
        let region_sectors = (self.sectors_per_device / self.profile.hot_regions as u64).max(1);

        let max_start = self.sectors_per_device.saturating_sub(sectors as u64 + 1);
        let lba = if rng.gen_bool(self.profile.sequential_fraction) {
            // Continue the device's current run, wrapping at the end.
            let lba = state.next_sequential_lba.min(max_start);
            state.next_sequential_lba = lba + sectors as u64;
            if state.next_sequential_lba >= max_start {
                state.next_sequential_lba = 0;
            }
            lba
        } else {
            // Skewed random: pick a region by popularity, uniform
            // inside it; the new position also re-seeds the
            // sequential run.
            let rank = self.zipf.sample(rng);
            let region = state.region_of_rank[rank] as u64;
            let base = region * region_sectors;
            let span = region_sectors.max(sectors as u64 + 1);
            let lba = (base + rng.gen_range(0..span)).min(max_start);
            state.next_sequential_lba = lba + sectors as u64;
            lba
        };

        let kind = if rng.gen_bool(self.profile.read_fraction) {
            RequestKind::Read
        } else {
            RequestKind::Write
        };
        let id = self.next_id;
        self.next_id += 1;
        Request::new(id, arrival, device, lba, sectors, kind)
    }

    /// Rescales the arrival process's long-run mean rate by `factor`,
    /// keeping the clock and burst phase (traffic what-if perturbation).
    ///
    /// # Panics
    ///
    /// Panics unless `factor` is positive and finite.
    pub fn scale_traffic(&mut self, factor: f64) {
        self.stream.scale_rate(factor);
    }

    /// Captures the complete stream state for checkpointing.
    pub fn capture_state(&self) -> TraceStreamState {
        TraceStreamState {
            profile: self.profile.clone(),
            devices: self.devices,
            sectors_per_device: self.sectors_per_device,
            rng: self.rng.state(),
            device_states: self.device_states.clone(),
            arrivals: self.stream.capture_state(),
            next_id: self.next_id,
        }
    }

    /// Rebuilds a stream mid-flight from a captured state.
    ///
    /// # Errors
    ///
    /// Returns the profile's validation message when the captured
    /// profile is degenerate (a corrupted checkpoint body).
    pub fn restore_state(state: TraceStreamState) -> Result<Self, String> {
        state.profile.validate()?;
        let zipf = ZipfSampler::try_new(state.profile.hot_regions, state.profile.zipf_theta)?;
        if state.devices == 0 {
            return Err("no devices".into());
        }
        if state.device_states.len() != state.devices as usize {
            return Err("device state count mismatch".into());
        }
        Ok(Self {
            profile: state.profile,
            devices: state.devices,
            sectors_per_device: state.sectors_per_device,
            zipf,
            rng: StdRng::from_state(state.rng),
            device_states: state.device_states,
            stream: ArrivalStream::restore_state(state.arrivals),
            next_id: state.next_id,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::SizeModel;

    fn generator(seq: f64, theta: f64) -> TraceGenerator {
        TraceGenerator::new(
            AccessProfile {
                read_fraction: 0.6,
                sequential_fraction: seq,
                size: SizeModel::Fixed(8),
                hot_regions: 100,
                zipf_theta: theta,
            },
            ArrivalModel::Poisson { rate: 500.0 },
            4,
            10_000_000,
        )
        .unwrap()
    }

    #[test]
    fn deterministic_for_a_seed() {
        let g = generator(0.3, 0.9);
        let a = g.generate(200, 42);
        let b = g.generate(200, 42);
        assert_eq!(a, b);
        let c = g.generate(200, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn requests_are_valid_and_ordered() {
        let g = generator(0.3, 0.9);
        let trace = g.generate(2_000, 1);
        let mut prev = -1.0;
        for r in &trace {
            assert!(r.arrival.get() > prev, "arrivals must increase");
            prev = r.arrival.get();
            assert!(r.device < 4);
            assert!(r.end_lba() <= 10_000_000);
            assert!(r.sectors == 8);
        }
    }

    #[test]
    fn read_fraction_is_respected() {
        let g = generator(0.2, 0.5);
        let trace = g.generate(20_000, 3);
        let reads = trace.iter().filter(|r| r.kind.is_read()).count();
        let frac = reads as f64 / trace.len() as f64;
        assert!((frac - 0.6).abs() < 0.02, "got {frac}");
    }

    #[test]
    fn sequential_fraction_produces_contiguous_runs() {
        let g = generator(0.9, 0.5);
        let trace = g.generate(5_000, 5);
        // Count per-device contiguity.
        let mut last_end = std::collections::HashMap::new();
        let mut contiguous = 0;
        let mut counted = 0;
        for r in &trace {
            if let Some(end) = last_end.get(&r.device) {
                counted += 1;
                if r.lba == *end {
                    contiguous += 1;
                }
            }
            last_end.insert(r.device, r.end_lba());
        }
        let frac = contiguous as f64 / counted as f64;
        assert!(frac > 0.75, "expected mostly sequential, got {frac}");
    }

    #[test]
    fn high_skew_concentrates_accesses() {
        let skewed = generator(0.0, 1.2);
        let uniform = generator(0.0, 0.0);
        let spread = |g: &TraceGenerator| {
            let trace = g.generate(20_000, 9);
            let region = |lba: u64| lba / 100_000; // 100 regions of 100k
            let mut counts = [0u32; 100];
            for r in &trace {
                counts[region(r.lba).min(99) as usize] += 1;
            }
            let max = *counts.iter().max().unwrap() as f64;
            max / trace.len() as f64
        };
        assert!(
            spread(&skewed) > 2.0 * spread(&uniform),
            "skewed traffic should concentrate"
        );
    }

    #[test]
    fn bad_config_rejected() {
        let profile = AccessProfile {
            read_fraction: 0.5,
            sequential_fraction: 0.5,
            size: SizeModel::Fixed(8),
            hot_regions: 10,
            zipf_theta: 0.5,
        };
        assert!(TraceGenerator::new(
            profile.clone(),
            ArrivalModel::Poisson { rate: 1.0 },
            0,
            1_000_000
        )
        .is_err());
        assert!(TraceGenerator::new(
            profile,
            ArrivalModel::Poisson { rate: 1.0 },
            1,
            10
        )
        .is_err());
    }
}
