//! The §4 design-selection methodology, automated.
//!
//! The paper's roadmap procedure is a per-year decision: keep last
//! year's mechanical platform if density growth alone meets the IDR
//! target (step 1); otherwise raise the RPM if the envelope allows
//! (step 2); otherwise shrink the platter and spin faster (step 3); and
//! when shrinking has cost too much capacity, add platters to buy it
//! back (step 4). This module walks those steps and reports, year by
//! year, which design the methodology selects and why.

use crate::config::RoadmapConfig;
use diskgeom::{DriveGeometry, Platter};
use diskperf::{idr, required_rpm};
use diskthermal::{
    max_rpm_within_envelope, DriveThermalSpec, EnvelopeSearch, ThermalModel,
};
use serde::{Deserialize, Serialize};
use units::{Capacity, DataRate, Inches, Rpm};

/// Which methodology step produced the year's design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlanStep {
    /// Step 1: density growth alone met the target on last year's
    /// platform and speed.
    DensityOnly,
    /// Step 2: same platform, higher spindle speed.
    RpmIncrease,
    /// Step 3: smaller platter (and the RPM that entails).
    PlatterShrink,
    /// Step 4: smaller platter *and* more platters to recover capacity.
    AddPlatters,
    /// The thermal cost of a taller stack forced the methodology to
    /// shed platters so the required RPM stays inside the envelope —
    /// the capacity sacrifice of §4.1's first option.
    ShedPlatters,
    /// No configuration in the design space meets the target within the
    /// envelope: the roadmap has fallen off; the best-IDR design is
    /// reported instead.
    FellOff,
}

/// One year of the planned roadmap.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct YearPlan {
    /// Roadmap year.
    pub year: i32,
    /// Step that produced this design.
    pub step: PlanStep,
    /// Chosen platter diameter.
    pub diameter: Inches,
    /// Chosen platter count.
    pub platters: u32,
    /// Operating spindle speed.
    pub rpm: Rpm,
    /// Delivered peak IDR.
    pub idr: DataRate,
    /// The year's target.
    pub idr_target: DataRate,
    /// Capacity of the chosen design.
    pub capacity: Capacity,
}

impl YearPlan {
    /// Whether the design meets the year's target (1.5 % tolerance, as
    /// in [`crate::RoadmapPoint::meets_target`]).
    pub fn meets_target(&self) -> bool {
        self.idr.get() >= 0.985 * self.idr_target.get()
    }
}

/// Highest envelope-respecting spindle speed for a platform, or `None`
/// when even the floor speed violates the envelope.
fn platform_max_rpm(cfg: &RoadmapConfig, diameter: Inches, platters: u32) -> Option<Rpm> {
    let spec = DriveThermalSpec::new(diameter, platters)
        .with_form_factor(cfg.form_factor)
        .with_ambient(cfg.ambient);
    let model = ThermalModel::with_params(spec, cfg.thermal);
    max_rpm_within_envelope(&model, 1.0, cfg.envelope, EnvelopeSearch::default())
}

fn geometry(cfg: &RoadmapConfig, year: i32, diameter: Inches, platters: u32) -> DriveGeometry {
    DriveGeometry::new(
        Platter::new(diameter),
        cfg.trend.tech(year),
        platters,
        cfg.n_zones,
    )
    .expect("roadmap-era geometry is valid")
}

/// Runs the §4 methodology over the configured years.
///
/// The walk starts on the largest platter at the seed speed and only
/// moves through the methodology's escape hatches when the target
/// demands it, preferring (in order): staying put, spinning faster,
/// shrinking, and adding platters. Capacity never regresses from one
/// year to the next unless the roadmap has fallen off entirely.
///
/// # Panics
///
/// Panics if the configuration is invalid.
pub fn plan_roadmap(cfg: &RoadmapConfig) -> Vec<YearPlan> {
    cfg.validate().expect("invalid roadmap configuration");
    let mut sizes = cfg.platter_sizes.clone();
    sizes.sort_by(|a, b| b.partial_cmp(a).expect("finite diameters"));
    let mut counts = cfg.platter_counts.clone();
    counts.sort_unstable();

    let mut plans = Vec::new();
    let mut cur_dia = sizes[0];
    let mut cur_platters = counts[0];
    let mut cur_rpm = cfg.seed_rpm;

    for year in cfg.years() {
        let target = cfg.trend.idr_target(year);
        let prev_capacity = plans
            .last()
            .map(|p: &YearPlan| p.capacity)
            .unwrap_or(Capacity::ZERO);

        let make = |step, dia: Inches, n: u32, rpm: Rpm| {
            let geom = geometry(cfg, year, dia, n);
            YearPlan {
                year,
                step,
                diameter: dia,
                platters: n,
                rpm,
                idr: idr(geom.zones(), rpm),
                idr_target: target,
                capacity: geom.capacity(),
            }
        };

        // Step 1: does density growth alone reach the target?
        let step1 = make(PlanStep::DensityOnly, cur_dia, cur_platters, cur_rpm);
        if step1.meets_target() {
            plans.push(step1);
            continue;
        }

        // Step 2: raise RPM on the same platform, if the envelope allows.
        let geom = geometry(cfg, year, cur_dia, cur_platters);
        let needed = required_rpm(geom.zones(), target);
        if let Some(max) = platform_max_rpm(cfg, cur_dia, cur_platters) {
            if needed <= max {
                cur_rpm = needed;
                plans.push(make(PlanStep::RpmIncrease, cur_dia, cur_platters, needed));
                continue;
            }
        }

        // Steps 3-4: scan smaller platters; within each, scan platter
        // counts upward so capacity is recovered where possible. Prefer
        // the largest-capacity design that meets the target.
        let mut best: Option<YearPlan> = None;
        for &dia in &sizes {
            for &n in &counts {
                let Some(max) = platform_max_rpm(cfg, dia, n) else {
                    continue;
                };
                let geom = geometry(cfg, year, dia, n);
                let needed = required_rpm(geom.zones(), target);
                if needed > max {
                    continue;
                }
                let step = if n > cur_platters {
                    PlanStep::AddPlatters
                } else if n < cur_platters {
                    PlanStep::ShedPlatters
                } else {
                    PlanStep::PlatterShrink
                };
                let plan = make(step, dia, n, needed);
                if best
                    .as_ref()
                    .map(|b| plan.capacity > b.capacity)
                    .unwrap_or(true)
                {
                    best = Some(plan);
                }
            }
        }

        if let Some(plan) = best {
            let _ = prev_capacity;
            cur_dia = plan.diameter;
            cur_platters = plan.platters;
            cur_rpm = plan.rpm;
            plans.push(plan);
            continue;
        }

        // Fell off: report the best-IDR design in the space.
        let mut fallback: Option<YearPlan> = None;
        for &dia in &sizes {
            for &n in &counts {
                let Some(max) = platform_max_rpm(cfg, dia, n) else {
                    continue;
                };
                let plan = make(PlanStep::FellOff, dia, n, max);
                if fallback
                    .as_ref()
                    .map(|b| plan.idr > b.idr)
                    .unwrap_or(true)
                {
                    fallback = Some(plan);
                }
            }
        }
        let plan = fallback.expect("at least one feasible platform exists");
        cur_dia = plan.diameter;
        cur_platters = plan.platters;
        cur_rpm = plan.rpm;
        plans.push(plan);
    }
    plans
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plans() -> Vec<YearPlan> {
        plan_roadmap(&RoadmapConfig::default())
    }

    #[test]
    fn covers_every_year() {
        let p = plans();
        assert_eq!(p.len(), 11);
        assert_eq!(p[0].year, 2002);
        assert_eq!(p[10].year, 2012);
    }

    #[test]
    fn early_years_meet_target_late_years_fall_off() {
        let p = plans();
        // The design space (down to 1.6", up to 4 platters) sustains the
        // target through ~2006-2007, as in the paper.
        assert!(p[0].meets_target(), "2002 must be met");
        let last_met = p
            .iter()
            .filter(|y| y.meets_target())
            .map(|y| y.year)
            .max()
            .unwrap();
        assert!(
            (2005..=2008).contains(&last_met),
            "target held through {last_met}"
        );
        assert_eq!(p[10].step, PlanStep::FellOff, "2012 is off the roadmap");
    }

    #[test]
    fn platters_shrink_before_falling_off() {
        let p = plans();
        // The methodology must have used the shrink escape hatch at some
        // point before giving up.
        assert!(p.iter().any(|y| matches!(
            y.step,
            PlanStep::PlatterShrink | PlanStep::AddPlatters | PlanStep::ShedPlatters
        )));
        // And the final platter size is the smallest available.
        let last_met = p.iter().rev().find(|y| y.meets_target()).unwrap();
        assert!(last_met.diameter < Inches::new(2.6));
    }

    #[test]
    fn rpm_never_decreases_while_on_roadmap() {
        let p = plans();
        let mut prev = 0.0;
        for y in p.iter().take_while(|y| y.meets_target()) {
            assert!(y.rpm.get() >= prev, "{}: rpm regressed", y.year);
            prev = y.rpm.get();
        }
    }

    #[test]
    fn designs_respect_the_envelope() {
        let cfg = RoadmapConfig::default();
        for y in plans() {
            let spec = DriveThermalSpec::new(y.diameter, y.platters)
                .with_form_factor(cfg.form_factor)
                .with_ambient(cfg.ambient);
            let model = ThermalModel::with_params(spec, cfg.thermal);
            let temp = model.steady_air_temp(diskthermal::OperatingPoint::seeking(y.rpm));
            assert!(
                temp.get() <= cfg.envelope.get() + 0.05,
                "{}: {temp} exceeds the envelope",
                y.year
            );
        }
    }

    #[test]
    fn shrink_years_dip_capacity_like_the_paper() {
        // §4.1's 2005 example: meeting the target forces a platter
        // shrink whose capacity cost density growth has to win back.
        // Capacity may therefore dip year-over-year, but never by more
        // than the shrink ratio itself, and it recovers within two
        // years of density growth while the target is still held.
        let p = plans();
        let met: Vec<&YearPlan> = p.iter().filter(|y| y.meets_target()).collect();
        for w in met.windows(2) {
            let ratio = w[1].capacity.gigabytes() / w[0].capacity.gigabytes();
            let mechanically_smaller = w[1].diameter < w[0].diameter
                || w[1].platters < w[0].platters;
            if mechanically_smaller {
                // Shrinking or shedding: dip bounded by the mechanical
                // reduction itself (density growth offsets part of it).
                assert!(ratio > 0.40, "{} -> {}: ratio {ratio:.2}", w[0].year, w[1].year);
            } else {
                assert!(
                    ratio >= 0.95,
                    "{} -> {}: capacity fell {ratio:.2} without a mechanical reduction",
                    w[0].year,
                    w[1].year
                );
            }
        }
        // Density growth recovers the dip by the end of the met period.
        if met.len() >= 2 {
            assert!(
                met.last().unwrap().capacity >= met[0].capacity,
                "capacity should net out upward across the met years"
            );
        }
    }
}
