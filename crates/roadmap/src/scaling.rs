//! Technology scaling: recording-density growth and the IDR target.

use diskgeom::RecordingTech;
use serde::{Deserialize, Serialize};
use units::{BitsPerInch, DataRate, TracksPerInch};

/// Compound-annual-growth model for BPI, TPI and the IDR target.
///
/// Anchored at the 1999 values Hitachi published (270 KBPI, 20 KTPI,
/// 47 MB/s). Densities grow at 30 %/50 % per year through 2003, then slow
/// to 14 %/28 % (the head-design, coercivity and superparamagnetic
/// stumbling blocks of §4), reaching ~1 Tb/in² in 2010 with a bit aspect
/// ratio of ~3.4. The IDR target compounds at 40 % throughout.
///
/// # Examples
///
/// ```
/// use roadmap::TechnologyTrend;
///
/// let trend = TechnologyTrend::default();
/// // The terabit transition lands in 2010, as the industry projected.
/// assert!(!trend.tech(2009).areal_density().is_terabit_class());
/// assert!(trend.tech(2010).areal_density().is_terabit_class());
/// // Table 3's IDR_Required column: 128.97 MB/s in 2002.
/// assert!((trend.idr_target(2002).get() - 128.97).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TechnologyTrend {
    /// Anchor year for all three series.
    pub anchor_year: i32,
    /// Linear density at the anchor year.
    pub bpi_anchor: BitsPerInch,
    /// Track density at the anchor year.
    pub tpi_anchor: TracksPerInch,
    /// IDR target at the anchor year.
    pub idr_anchor: DataRate,
    /// BPI CGR before the slowdown (fractional, 0.30 = 30 %).
    pub bpi_cgr_early: f64,
    /// TPI CGR before the slowdown.
    pub tpi_cgr_early: f64,
    /// Last year the early CGRs apply (the paper's 2003).
    pub slowdown_year: i32,
    /// BPI CGR from `slowdown_year + 1` on.
    pub bpi_cgr_late: f64,
    /// TPI CGR from `slowdown_year + 1` on.
    pub tpi_cgr_late: f64,
    /// IDR target CGR (the 40 % the industry charted).
    pub idr_cgr: f64,
}

impl Default for TechnologyTrend {
    fn default() -> Self {
        Self {
            anchor_year: 1999,
            bpi_anchor: BitsPerInch::from_kbpi(270.0),
            tpi_anchor: TracksPerInch::from_ktpi(20.0),
            idr_anchor: DataRate::new(47.0),
            bpi_cgr_early: 0.30,
            tpi_cgr_early: 0.50,
            slowdown_year: 2003,
            bpi_cgr_late: 0.14,
            tpi_cgr_late: 0.28,
            idr_cgr: 0.40,
        }
    }
}

impl TechnologyTrend {
    /// Years of early growth and late growth elapsed by `year`.
    ///
    /// # Panics
    ///
    /// Panics if `year` precedes the anchor year.
    fn phase_years(&self, year: i32) -> (i32, i32) {
        assert!(
            year >= self.anchor_year,
            "the trend starts at {}; {year} is before it",
            self.anchor_year
        );
        let early = (year - self.anchor_year).min(self.slowdown_year - self.anchor_year);
        let late = (year - self.slowdown_year).max(0);
        (early, late)
    }

    /// Projected linear density for a year.
    pub fn bpi(&self, year: i32) -> BitsPerInch {
        let (early, late) = self.phase_years(year);
        self.bpi_anchor
            * (1.0 + self.bpi_cgr_early).powi(early)
            * (1.0 + self.bpi_cgr_late).powi(late)
    }

    /// Projected track density for a year.
    pub fn tpi(&self, year: i32) -> TracksPerInch {
        let (early, late) = self.phase_years(year);
        self.tpi_anchor
            * (1.0 + self.tpi_cgr_early).powi(early)
            * (1.0 + self.tpi_cgr_late).powi(late)
    }

    /// The recording technology point for a year (with the default
    /// areal-density-stepped ECC policy).
    pub fn tech(&self, year: i32) -> RecordingTech {
        RecordingTech::new(self.bpi(year), self.tpi(year))
    }

    /// The 40 %-CGR internal-data-rate target for a year.
    pub fn idr_target(&self, year: i32) -> DataRate {
        let years = year - self.anchor_year;
        assert!(years >= 0, "the trend starts at {}", self.anchor_year);
        self.idr_anchor * (1.0 + self.idr_cgr).powi(years)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchors_reproduce_1999() {
        let t = TechnologyTrend::default();
        assert!((t.bpi(1999).to_kbpi() - 270.0).abs() < 1e-9);
        assert!((t.tpi(1999).to_ktpi() - 20.0).abs() < 1e-9);
        assert!((t.idr_target(1999).get() - 47.0).abs() < 1e-9);
    }

    #[test]
    fn early_growth_matches_hitachi_rates() {
        let t = TechnologyTrend::default();
        // 2002 = three years of 30%/50% growth.
        assert!((t.bpi(2002).to_kbpi() - 270.0 * 1.3f64.powi(3)).abs() < 1e-6);
        assert!((t.tpi(2002).to_ktpi() - 20.0 * 1.5f64.powi(3)).abs() < 1e-6);
    }

    #[test]
    fn slowdown_kicks_in_after_2003() {
        let t = TechnologyTrend::default();
        let g_2003 = t.bpi(2003) / t.bpi(2002);
        let g_2004 = t.bpi(2004) / t.bpi(2003);
        assert!((g_2003 - 1.30).abs() < 1e-9);
        assert!((g_2004 - 1.14).abs() < 1e-9);
    }

    #[test]
    fn terabit_lands_in_2010_with_low_bar() {
        let t = TechnologyTrend::default();
        let tech = t.tech(2010);
        assert!(tech.areal_density().is_terabit_class());
        assert!(!t.tech(2009).areal_density().is_terabit_class());
        // BAR has fallen from ~13 in 1999 toward the ~3.4 design point.
        assert!(tech.bit_aspect_ratio().get() < 4.0);
        // The paper's target: ~1.85 MBPI and ~540 KTPI.
        assert!((tech.bpi().get() / 1.85e6 - 1.0).abs() < 0.1);
        assert!((tech.tpi().to_ktpi() / 540.0 - 1.0).abs() < 0.1);
    }

    #[test]
    fn idr_target_compounds_at_forty_percent() {
        let t = TechnologyTrend::default();
        assert!((t.idr_target(2002).get() - 128.97).abs() < 0.01);
        assert!((t.idr_target(2012).get() - 47.0 * 1.4f64.powi(13)).abs() < 1e-6);
        // The 2012 target from Table 3: 3730.46 MB/s.
        assert!((t.idr_target(2012).get() - 3730.46).abs() < 1.0);
    }

    #[test]
    fn ecc_step_makes_areal_density_jump_but_not_user_bits() {
        let t = TechnologyTrend::default();
        // Densities grow smoothly across the terabit transition...
        let g = t.bpi(2010) / t.bpi(2009);
        assert!((g - 1.14).abs() < 1e-9);
        // ...the capacity/IDR discontinuity comes from the ECC policy,
        // exercised in the generator tests.
        assert_eq!(t.tech(2009).ecc_bits_per_sector(), 416);
        assert_eq!(t.tech(2010).ecc_bits_per_sector(), 1440);
    }

    #[test]
    #[should_panic(expected = "starts at")]
    fn pre_anchor_year_panics() {
        let _ = TechnologyTrend::default().bpi(1990);
    }
}
