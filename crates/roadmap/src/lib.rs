//! Thermal-envelope-constrained disk technology roadmap (§4).
//!
//! Combines the capacity ([`diskgeom`]), performance ([`diskperf`]) and
//! thermal ([`diskthermal`]) models to chart how internal data rate and
//! capacity can evolve from 2002 to 2012 when every design point must
//! stay inside a fixed thermal envelope:
//!
//! - [`TechnologyTrend`] — BPI/TPI compound annual growth rates with the
//!   post-2003 slowdown and the terabit ECC step, plus the 40 % IDR
//!   growth target.
//! - [`required_rpm_table`] — Table 3: the spindle speed each platter
//!   size needs every year to hold the 40 % target, and the steady-state
//!   temperature that speed would reach.
//! - [`envelope_roadmap`] — Figure 2: the maximum IDR (and corresponding
//!   capacity) attainable *within* the envelope, for every platter size
//!   and count.
//! - [`cooling_credit`] / cooling sweeps — Figure 3 and §4.2.
//!
//! # Examples
//!
//! ```
//! use roadmap::{RoadmapConfig, required_rpm_table};
//!
//! let rows = required_rpm_table(&RoadmapConfig::default());
//! // 2002, 2.6": the paper's Table 3 reports 15,098 RPM at 45.24 C.
//! let r = rows
//!     .iter()
//!     .find(|r| r.year == 2002 && (r.diameter.get() - 2.6).abs() < 1e-9)
//!     .unwrap();
//! assert!((r.required_rpm.get() - 15_098.0).abs() / 15_098.0 < 0.02);
//! assert!((r.steady_temp.get() - 45.24).abs() < 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod generator;
mod planner;
mod scaling;

pub use config::RoadmapConfig;
pub use planner::{plan_roadmap, PlanStep, YearPlan};
pub use generator::{
    cooling_credit, envelope_roadmap, falloff_year, form_factor_study, required_rpm_table,
    roadmap_for, FormFactorStudy, RequiredRpmRow, RoadmapPoint,
};
pub use scaling::TechnologyTrend;
