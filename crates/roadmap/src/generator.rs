//! Roadmap generation: Table 3, Figure 2, Figure 3 and the §4.2.2
//! form-factor study.

use crate::config::RoadmapConfig;
use diskgeom::{DriveGeometry, GeometryError, Platter};
use diskperf::{idr, required_rpm};
use diskthermal::{
    ambient_for_envelope, max_rpm_within_envelope, DriveThermalSpec, EnvelopeSearch,
    OperatingPoint, ThermalModel,
};
use serde::{Deserialize, Serialize};
use units::{Capacity, Celsius, DataRate, Inches, Power, Rpm};

/// One row of the Table 3 reproduction: the RPM a platter size needs in
/// a given year to hold the 40 % IDR target, and its thermal cost.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RequiredRpmRow {
    /// Roadmap year.
    pub year: i32,
    /// Platter diameter.
    pub diameter: Inches,
    /// The year's IDR target (`IDR_Required`).
    pub idr_target: DataRate,
    /// IDR obtainable from density growth alone, at the constant seed
    /// spindle speed (`IDR_density`).
    pub idr_density: DataRate,
    /// Spindle speed required to reach the target.
    pub required_rpm: Rpm,
    /// Steady-state internal-air temperature at that speed (single
    /// platter, VCM always on).
    pub steady_temp: Celsius,
    /// Viscous dissipation at that speed.
    pub viscous_power: Power,
}

/// Builds the drive geometry for a roadmap year and platter size.
fn geometry_for(
    cfg: &RoadmapConfig,
    year: i32,
    diameter: Inches,
    platters: u32,
) -> Result<DriveGeometry, GeometryError> {
    DriveGeometry::new(Platter::new(diameter), cfg.trend.tech(year), platters, cfg.n_zones)
}

/// Reproduces Table 3: for each year and platter size, the spindle speed
/// needed to meet the IDR target and the temperature it would reach.
///
/// # Panics
///
/// Panics if the configuration is invalid (see
/// [`RoadmapConfig::validate`]).
pub fn required_rpm_table(cfg: &RoadmapConfig) -> Vec<RequiredRpmRow> {
    cfg.validate().expect("invalid roadmap configuration");
    let mut rows = Vec::new();
    for &diameter in &cfg.platter_sizes {
        for year in cfg.years() {
            let geom = geometry_for(cfg, year, diameter, 1)
                .expect("roadmap-era densities yield valid geometries");
            let target = cfg.trend.idr_target(year);
            // "IDR obtainable with just the density growth without any
            // RPM changes": evaluated at the constant seed speed (the
            // 15,000 RPM drive of the year before the roadmap starts) —
            // this reproduces the paper's IDR_density column, including
            // its drop at the 2010 ECC transition.
            let density_only = idr(geom.zones(), cfg.seed_rpm);
            let rpm = required_rpm(geom.zones(), target);

            let spec = DriveThermalSpec::new(diameter, 1)
                .with_form_factor(cfg.form_factor)
                .with_ambient(cfg.ambient);
            let model = ThermalModel::with_params(spec, cfg.thermal);
            let steady = model.steady_air_temp(OperatingPoint::seeking(rpm));
            let power = model.power_breakdown(OperatingPoint::seeking(rpm)).viscous;

            rows.push(RequiredRpmRow {
                year,
                diameter,
                idr_target: target,
                idr_density: density_only,
                required_rpm: rpm,
                steady_temp: steady,
                viscous_power: power,
            });
        }
    }
    rows
}

/// One point of the envelope-constrained roadmap (Figure 2): the best a
/// configuration can do in a year without leaving the envelope.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoadmapPoint {
    /// Roadmap year.
    pub year: i32,
    /// Platter diameter.
    pub diameter: Inches,
    /// Platter count.
    pub platters: u32,
    /// Highest spindle speed inside the envelope (constant across years
    /// for a fixed mechanical configuration).
    pub max_rpm: Rpm,
    /// Maximum IDR at that speed with the year's recording density.
    pub max_idr: DataRate,
    /// The year's IDR target, for fall-off comparison.
    pub idr_target: DataRate,
    /// User capacity of the configuration in that year.
    pub capacity: Capacity,
    /// Ambient temperature used (after any cooling credit).
    pub ambient: Celsius,
}

impl RoadmapPoint {
    /// Whether the configuration meets the year's target within the
    /// envelope, to a 1.5 % tolerance.
    ///
    /// The tolerance reflects the paper's own rounding: Table 3's
    /// 2.6″/2002 entry runs 15,098 RPM against a ~15,020 RPM envelope
    /// limit (a 0.5 % IDR shortfall) yet Figure 2 counts 2002 as met.
    /// The next roadmap year's shortfall is ~8 %, so the tolerance
    /// cannot misclassify a genuine fall-off.
    pub fn meets_target(&self) -> bool {
        self.max_idr.get() >= 0.985 * self.idr_target.get()
    }
}

/// The external-cooling credit granted to multi-platter configurations:
/// the ambient temperature at which an `n`-platter stack of the *largest*
/// roadmap platter matches the envelope at the roadmap's seed speed, so
/// every platter count starts the roadmap at the same thermal envelope
/// (§4: "we provide different external cooling budgets for each of the
/// three platter counts").
pub fn cooling_credit(cfg: &RoadmapConfig, platters: u32) -> Celsius {
    let diameter = cfg
        .platter_sizes
        .iter()
        .copied()
        .fold(Inches::new(0.0), Inches::max);
    let spec = DriveThermalSpec::new(diameter, platters)
        .with_form_factor(cfg.form_factor)
        .with_ambient(cfg.ambient);
    let model = ThermalModel::with_params(spec, cfg.thermal);
    let ambient =
        ambient_for_envelope(&model, OperatingPoint::seeking(cfg.seed_rpm), cfg.envelope);
    // Credits only: never *heat* the single-platter baseline.
    ambient.min(cfg.ambient)
}

/// Roadmap for one mechanical configuration (platter size × count) under
/// an explicit ambient temperature.
pub fn roadmap_for(
    cfg: &RoadmapConfig,
    diameter: Inches,
    platters: u32,
    ambient: Celsius,
) -> Vec<RoadmapPoint> {
    let spec = DriveThermalSpec::new(diameter, platters)
        .with_form_factor(cfg.form_factor)
        .with_ambient(ambient);
    let model = ThermalModel::with_params(spec, cfg.thermal);
    let max_rpm =
        max_rpm_within_envelope(&model, 1.0, cfg.envelope, EnvelopeSearch::default());

    cfg.years()
        .map(|year| {
            let geom = geometry_for(cfg, year, diameter, platters)
                .expect("roadmap-era densities yield valid geometries");
            let target = cfg.trend.idr_target(year);
            let (rpm, max_idr) = match max_rpm {
                Some(rpm) => (rpm, idr(geom.zones(), rpm)),
                None => (Rpm::ZERO, DataRate::ZERO),
            };
            RoadmapPoint {
                year,
                diameter,
                platters,
                max_rpm: rpm,
                max_idr,
                idr_target: target,
                capacity: geom.capacity(),
                ambient,
            }
        })
        .collect()
}

/// Reproduces Figure 2: every (platter size × platter count × year)
/// point of the envelope-constrained roadmap, with multi-platter
/// configurations granted their cooling credit.
pub fn envelope_roadmap(cfg: &RoadmapConfig) -> Vec<RoadmapPoint> {
    cfg.validate().expect("invalid roadmap configuration");
    let mut points = Vec::new();
    for &platters in &cfg.platter_counts {
        let ambient = cooling_credit(cfg, platters);
        for &diameter in &cfg.platter_sizes {
            points.extend(roadmap_for(cfg, diameter, platters, ambient));
        }
    }
    points
}

/// First year a configuration's best in-envelope IDR falls below the
/// target, or `None` if it holds through the whole roadmap.
pub fn falloff_year(points: &[RoadmapPoint]) -> Option<i32> {
    points
        .iter()
        .filter(|p| !p.meets_target())
        .map(|p| p.year)
        .min()
}

/// Result of the §4.2.2 form-factor study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FormFactorStudy {
    /// Roadmap of the 2.6″ single-platter drive in the small enclosure.
    pub small_points: Vec<RoadmapPoint>,
    /// Fall-off year in the small enclosure.
    pub small_falloff: Option<i32>,
    /// Fall-off year in the baseline 3.5″ enclosure.
    pub baseline_falloff: Option<i32>,
    /// Extra ambient cooling (°C below the baseline ambient) the small
    /// enclosure needs before its fall-off year matches the baseline's.
    pub cooling_needed: f64,
}

/// Reproduces §4.2.2: moving the 2.6″ platter into a 2.5″ enclosure
/// shrinks the heat-rejection area enough to fall off the roadmap
/// immediately; quantifies the extra cooling needed to recover.
pub fn form_factor_study(cfg: &RoadmapConfig) -> FormFactorStudy {
    let diameter = Inches::new(2.6);
    let small_cfg = cfg
        .clone()
        .with_form_factor(diskthermal::FormFactor::Small25);

    let baseline = roadmap_for(cfg, diameter, 1, cfg.ambient);
    let small = roadmap_for(&small_cfg, diameter, 1, small_cfg.ambient);
    let baseline_falloff = falloff_year(&baseline);
    let small_falloff = falloff_year(&small);

    // Sweep extra cooling in 1 C steps until the small enclosure lasts
    // at least as long on the roadmap as the 3.5" baseline (the
    // transition is steep, so demanding the exact same fall-off year can
    // skip past it between integer steps).
    let mut cooling_needed = 0.0;
    for extra in 1..=40 {
        let ambient = Celsius::new(cfg.ambient.get() - extra as f64);
        let pts = roadmap_for(&small_cfg, diameter, 1, ambient);
        if falloff_year(&pts) >= baseline_falloff {
            cooling_needed = extra as f64;
            break;
        }
    }

    FormFactorStudy {
        small_points: small,
        small_falloff,
        baseline_falloff,
        cooling_needed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> RoadmapConfig {
        RoadmapConfig::default()
    }

    fn row(rows: &[RequiredRpmRow], year: i32, dia: f64) -> RequiredRpmRow {
        *rows
            .iter()
            .find(|r| r.year == year && (r.diameter.get() - dia).abs() < 1e-9)
            .expect("row exists")
    }

    #[test]
    fn table3_2002_anchors() {
        let rows = required_rpm_table(&cfg());
        // Paper: 15,098 / 18,692 / 24,533 RPM for 2.6 / 2.1 / 1.6".
        for (dia, rpm, temp) in [
            (2.6, 15_098.0, 45.24),
            (2.1, 18_692.0, 43.56),
            (1.6, 24_533.0, 41.64),
        ] {
            let r = row(&rows, 2002, dia);
            let rpm_err = (r.required_rpm.get() - rpm).abs() / rpm;
            assert!(rpm_err < 0.02, "{dia}\": rpm {} vs {rpm}", r.required_rpm);
            assert!(
                (r.steady_temp.get() - temp).abs() < 1.0,
                "{dia}\": temp {} vs {temp}",
                r.steady_temp
            );
        }
    }

    #[test]
    fn table3_rpm_grows_every_year() {
        let rows = required_rpm_table(&cfg());
        for dia in [2.6, 2.1, 1.6] {
            let mut prev = 0.0;
            for year in 2002..=2012 {
                let r = row(&rows, year, dia);
                assert!(
                    r.required_rpm.get() > prev,
                    "required RPM must grow ({dia}\", {year})"
                );
                prev = r.required_rpm.get();
            }
        }
    }

    #[test]
    fn table3_terabit_transition_spikes_rpm() {
        let rows = required_rpm_table(&cfg());
        // Paper: "a sudden 70% increase in RPM" from 2009 to 2010 due to
        // the ECC step. Years around it grow at ~23%.
        let r2009 = row(&rows, 2009, 2.6);
        let r2010 = row(&rows, 2010, 2.6);
        let jump = r2010.required_rpm.get() / r2009.required_rpm.get();
        assert!(jump > 1.5, "terabit ECC step should spike RPM, got {jump:.2}");
        let r2008 = row(&rows, 2008, 2.6);
        let normal = r2009.required_rpm.get() / r2008.required_rpm.get();
        assert!((normal - 1.23).abs() < 0.04, "steady growth ~23%, got {normal:.3}");
    }

    #[test]
    fn table3_smaller_platters_run_cooler() {
        let rows = required_rpm_table(&cfg());
        for year in [2002, 2005, 2008, 2012] {
            let t26 = row(&rows, year, 2.6).steady_temp;
            let t21 = row(&rows, year, 2.1).steady_temp;
            let t16 = row(&rows, year, 1.6).steady_temp;
            assert!(t26 > t21 && t21 > t16, "{year}: {t26} / {t21} / {t16}");
        }
    }

    #[test]
    fn table3_2012_temperatures_are_extreme() {
        // Paper: 602.98 C for the 2.6" drive in 2012.
        let rows = required_rpm_table(&cfg());
        let t = row(&rows, 2012, 2.6).steady_temp.get();
        assert!(
            (t - 602.98).abs() / 602.98 < 0.15,
            "2012 2.6\" temperature {t:.0} C vs paper's 602.98"
        );
    }

    #[test]
    fn figure2_single_platter_falloff_years() {
        let c = cfg();
        let all = envelope_roadmap(&c);
        let for_config = |dia: f64, n: u32| -> Vec<RoadmapPoint> {
            all.iter()
                .filter(|p| (p.diameter.get() - dia).abs() < 1e-9 && p.platters == n)
                .copied()
                .collect()
        };
        // Paper: 2.6" falls off from 2003; 2.1" holds to ~2004-2005;
        // 1.6" holds to ~2006-2007.
        let f26 = falloff_year(&for_config(2.6, 1)).expect("2.6 falls off");
        let f21 = falloff_year(&for_config(2.1, 1)).expect("2.1 falls off");
        let f16 = falloff_year(&for_config(1.6, 1)).expect("1.6 falls off");
        assert!((2003..=2004).contains(&f26), "2.6\" fall-off {f26}");
        assert!((2004..=2006).contains(&f21), "2.1\" fall-off {f21}");
        assert!((2006..=2008).contains(&f16), "1.6\" fall-off {f16}");
        assert!(f26 < f21 && f21 < f16, "smaller platters last longer");
    }

    #[test]
    fn figure2_max_rpm_constant_across_years() {
        let all = envelope_roadmap(&cfg());
        let rpms: Vec<f64> = all
            .iter()
            .filter(|p| (p.diameter.get() - 2.6).abs() < 1e-9 && p.platters == 1)
            .map(|p| p.max_rpm.get())
            .collect();
        for w in rpms.windows(2) {
            assert!((w[0] - w[1]).abs() < 1.0);
        }
        // ~15,020 RPM for the 2.6" single-platter drive (§5.3).
        assert!((rpms[0] - 15_020.0).abs() < 300.0, "got {}", rpms[0]);
    }

    #[test]
    fn figure2_capacity_grows_until_terabit_dip() {
        let all = envelope_roadmap(&cfg());
        let caps: Vec<(i32, f64)> = all
            .iter()
            .filter(|p| (p.diameter.get() - 2.6).abs() < 1e-9 && p.platters == 1)
            .map(|p| (p.year, p.capacity.gigabytes()))
            .collect();
        for w in caps.windows(2) {
            let ((y0, c0), (y1, c1)) = (w[0], w[1]);
            if y1 == 2010 {
                // The ECC step eats ~22% of the sector; density growth
                // (+14/+28%) does not fully cover it for IDR, but
                // capacity may still dip or stall.
                let _ = (y0, c0, c1);
            } else {
                assert!(c1 > c0, "capacity should grow {y0}->{y1}");
            }
        }
    }

    #[test]
    fn figure2_idr_dips_at_terabit_transition() {
        let all = envelope_roadmap(&cfg());
        let pts: Vec<&RoadmapPoint> = all
            .iter()
            .filter(|p| (p.diameter.get() - 1.6).abs() < 1e-9 && p.platters == 1)
            .collect();
        let idr_2009 = pts.iter().find(|p| p.year == 2009).unwrap().max_idr;
        let idr_2010 = pts.iter().find(|p| p.year == 2010).unwrap().max_idr;
        assert!(
            idr_2010 < idr_2009,
            "ECC step must dent IDR: {idr_2009} -> {idr_2010}"
        );
    }

    #[test]
    fn multi_platter_gets_cooling_credit() {
        let c = cfg();
        let a1 = cooling_credit(&c, 1);
        let a2 = cooling_credit(&c, 2);
        let a4 = cooling_credit(&c, 4);
        assert!(a1.get() <= 28.0 + 1e-9);
        assert!(a2 < a1, "2 platters need more cooling");
        assert!(a4 < a2, "4 platters need even more");
    }

    #[test]
    fn multi_platter_roadmap_same_shape() {
        // With its cooling credit, the 4-platter roadmap starts at the
        // same envelope and falls off no later than slightly after the
        // 1-platter one (the paper: "slightly steeper").
        let c = cfg();
        let all = envelope_roadmap(&c);
        let f = |n: u32| {
            let pts: Vec<RoadmapPoint> = all
                .iter()
                .filter(|p| (p.diameter.get() - 1.6).abs() < 1e-9 && p.platters == n)
                .copied()
                .collect();
            falloff_year(&pts).expect("falls off eventually")
        };
        let f1 = f(1);
        let f4 = f(4);
        // Higher platter counts incur more viscous dissipation, so they
        // fall off no later than the single-platter drive ("slightly
        // steeper" in the paper); our surrogate's air-to-case coupling
        // does not grow with stack height, which steepens the penalty to
        // up to two years.
        assert!(f4 <= f1, "more platters cannot last longer: {f1} vs {f4}");
        assert!(f1 - f4 <= 2, "1-platter {f1} vs 4-platter {f4}");
    }

    #[test]
    fn cooling_extends_the_roadmap() {
        // Figure 3: 5 C and 10 C cooler ambients push fall-off later.
        let base = cfg();
        let cool5 = cfg().with_ambient(Celsius::new(23.0));
        let cool10 = cfg().with_ambient(Celsius::new(18.0));
        let falloff = |c: &RoadmapConfig| {
            let pts = roadmap_for(c, Inches::new(1.6), 1, c.ambient);
            falloff_year(&pts).expect("falls off")
        };
        let f0 = falloff(&base);
        let f5 = falloff(&cool5);
        let f10 = falloff(&cool10);
        assert!(f5 >= f0, "5 C cooler cannot hurt: {f0} -> {f5}");
        assert!(f10 >= f5, "10 C cooler cannot hurt: {f5} -> {f10}");
        assert!(f10 > f0, "10 C of cooling should buy at least a year");
    }

    #[test]
    fn form_factor_study_matches_section_4_2_2() {
        let study = form_factor_study(&cfg());
        // Paper: the 2.5" enclosure falls off the roadmap already at 2002.
        assert_eq!(study.small_falloff, Some(2002));
        assert!(study.baseline_falloff > Some(2002));
        // Paper: ~15 C of extra cooling is needed to make it comparable.
        assert!(
            study.cooling_needed >= 8.0 && study.cooling_needed <= 25.0,
            "cooling needed: {}",
            study.cooling_needed
        );
    }
}
