//! Roadmap study configuration.

use crate::scaling::TechnologyTrend;
use diskthermal::{FormFactor, ThermalParams, THERMAL_ENVELOPE};
use serde::{Deserialize, Serialize};
use units::{Celsius, Inches, Rpm};

/// Everything that parameterizes a roadmap run.
///
/// The defaults reproduce the paper's §4 setup: 2002–2012, platter sizes
/// {2.6″, 2.1″, 1.6″}, counts {1, 2, 4}, 50 zones, a 3.5″ enclosure, the
/// 45.22 °C envelope at 28 °C ambient, and a 15,000 RPM seed drive in the
/// year before the roadmap starts.
///
/// # Examples
///
/// ```
/// use roadmap::RoadmapConfig;
/// use units::Celsius;
///
/// // The Figure 3 "5 C cooler" configuration:
/// let cooled = RoadmapConfig::default().with_ambient(Celsius::new(23.0));
/// assert_eq!(cooled.ambient, Celsius::new(23.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoadmapConfig {
    /// Density and IDR-target growth model.
    pub trend: TechnologyTrend,
    /// First roadmap year.
    pub start_year: i32,
    /// Last roadmap year (inclusive).
    pub end_year: i32,
    /// Candidate platter diameters, largest first.
    pub platter_sizes: Vec<Inches>,
    /// Candidate platter counts (low / medium / high capacity segments).
    pub platter_counts: Vec<u32>,
    /// ZBR zones per surface (the paper uses 50 for the roadmap).
    pub n_zones: u32,
    /// Enclosure form factor.
    pub form_factor: FormFactor,
    /// The thermal envelope every design point must respect.
    pub envelope: Celsius,
    /// External ambient temperature the cooling system maintains.
    pub ambient: Celsius,
    /// Thermal model coefficients.
    pub thermal: ThermalParams,
    /// Spindle speed of the (start_year − 1) seed drive, used to compute
    /// the `IDR_density` column of Table 3.
    pub seed_rpm: Rpm,
}

impl Default for RoadmapConfig {
    fn default() -> Self {
        Self {
            trend: TechnologyTrend::default(),
            start_year: 2002,
            end_year: 2012,
            platter_sizes: vec![Inches::new(2.6), Inches::new(2.1), Inches::new(1.6)],
            platter_counts: vec![1, 2, 4],
            n_zones: 50,
            form_factor: FormFactor::Standard35,
            envelope: THERMAL_ENVELOPE,
            ambient: Celsius::new(28.0),
            thermal: ThermalParams::default(),
            seed_rpm: Rpm::new(15_000.0),
        }
    }
}

impl RoadmapConfig {
    /// Returns the configuration with a different ambient temperature
    /// (the Figure 3 cooling study).
    pub fn with_ambient(mut self, ambient: Celsius) -> Self {
        self.ambient = ambient;
        self
    }

    /// Returns the configuration with a different enclosure (the §4.2.2
    /// form-factor study).
    pub fn with_form_factor(mut self, form_factor: FormFactor) -> Self {
        self.form_factor = form_factor;
        self
    }

    /// The years the roadmap covers.
    pub fn years(&self) -> impl Iterator<Item = i32> {
        self.start_year..=self.end_year
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field.
    pub fn validate(&self) -> Result<(), String> {
        if self.start_year > self.end_year {
            return Err(format!(
                "start_year {} after end_year {}",
                self.start_year, self.end_year
            ));
        }
        if self.platter_sizes.is_empty() {
            return Err("no platter sizes".into());
        }
        if self.platter_counts.is_empty() || self.platter_counts.contains(&0) {
            return Err("platter counts must be non-empty and positive".into());
        }
        if self.n_zones == 0 {
            return Err("n_zones must be positive".into());
        }
        for d in &self.platter_sizes {
            if *d > self.form_factor.max_platter() {
                return Err(format!("{d} platter does not fit {}", self.form_factor));
            }
        }
        if self.envelope <= self.ambient {
            return Err("envelope must exceed ambient".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_matches_paper() {
        let c = RoadmapConfig::default();
        c.validate().expect("default config is valid");
        assert_eq!(c.start_year, 2002);
        assert_eq!(c.end_year, 2012);
        assert_eq!(c.platter_counts, vec![1, 2, 4]);
        assert_eq!(c.n_zones, 50);
        assert_eq!(c.envelope.get(), 45.22);
    }

    #[test]
    fn validation_catches_bad_configs() {
        let c = RoadmapConfig {
            start_year: 2013,
            ..RoadmapConfig::default()
        };
        assert!(c.validate().is_err());

        let c = RoadmapConfig {
            platter_counts: vec![0],
            ..RoadmapConfig::default()
        };
        assert!(c.validate().is_err());

        let c = RoadmapConfig {
            ambient: Celsius::new(50.0),
            ..RoadmapConfig::default()
        };
        assert!(c.validate().is_err());

        let c = RoadmapConfig::default().with_form_factor(FormFactor::Small25);
        // 2.6" still fits a 2.5" enclosure, so this remains valid.
        assert!(c.validate().is_ok());
    }

    #[test]
    fn years_iterator_covers_range() {
        let c = RoadmapConfig::default();
        let years: Vec<i32> = c.years().collect();
        assert_eq!(years.len(), 11);
        assert_eq!(years[0], 2002);
        assert_eq!(*years.last().unwrap(), 2012);
    }
}
