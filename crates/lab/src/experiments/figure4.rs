//! Figure 4: response-time CDFs of five server workloads as spindle
//! speed increases in +5,000 RPM steps (thermal effects deliberately
//! ignored, as in the paper).
//!
//! The paper replays 3–6 million requests per trace; [`Figure4`]
//! defaults to 200,000 per workload, and the `figure4` wrapper binary
//! still accepts a request-count argument to approach trace scale.

use crate::engine::{default_parallelism, parallel_map};
use crate::experiments::config_object;
use crate::text::{out, outln, rule};
use crate::{Experiment, LabError, RunOutput, Scale};
use serde::Serialize;
use serde_json::Value;
use units::Rpm;
use workloads::presets;

#[derive(Serialize)]
struct WorkloadResult {
    name: String,
    rpm: f64,
    requests: u64,
    mean_ms: f64,
    p95_ms: f64,
    cdf: Vec<(f64, f64)>,
}

/// The spindle-speed / response-time experiment.
pub struct Figure4 {
    /// Requests replayed per workload.
    pub requests: usize,
    /// Trace-generator seed.
    pub seed: u64,
}

impl Figure4 {
    /// Paper-shaped defaults at the given scale.
    pub fn at_scale(scale: Scale) -> Self {
        Figure4 {
            requests: match scale {
                Scale::Full => 200_000,
                Scale::Quick => 2_000,
            },
            seed: 42,
        }
    }
}

impl Experiment for Figure4 {
    fn name(&self) -> &'static str {
        "figure4"
    }

    fn config(&self) -> Value {
        config_object(vec![
            ("requests", self.requests.to_value()),
            ("seed", self.seed.to_value()),
        ])
    }

    fn run(&self) -> Result<RunOutput, LabError> {
        let mut report = String::new();
        let n = self.requests;

        outln!(report, "Figure 4: response times vs spindle speed ({n} requests per workload)");

        // Each (workload, RPM) replay is independent, and the replays
        // dominate the experiment's wall time: run the full 5×4 grid in
        // parallel, then render the tables serially in the fixed order.
        let all = presets();
        let jobs: Vec<(usize, f64)> = all
            .iter()
            .enumerate()
            .flat_map(|(pi, preset)| {
                let base = preset.base_rpm.get();
                (0..4).map(move |i| (pi, base + i as f64 * 5_000.0))
            })
            .collect();
        let runs = parallel_map(jobs, default_parallelism(), |(pi, rpm)| {
            let preset = &all[pi];
            preset
                .run(Rpm::new(rpm), n, self.seed)
                .map_err(|e| LabError::Experiment(format!("{}: {e}", preset.name)))
        });
        let mut runs = runs.into_iter();

        let mut results = Vec::new();
        for preset in &all {
            let base = preset.base_rpm.get();
            let steps: Vec<f64> = (0..4).map(|i| base + i as f64 * 5_000.0).collect();

            outln!(report, "\n{} ({} disks{}, base {:.0} RPM; paper mean at base: {:.2} ms)",
                preset.name,
                preset.disks,
                if preset.raid.is_some() { ", RAID-5" } else { "" },
                base,
                preset.paper_mean_response_ms,
            );
            outln!(report, "{}", rule(100));
            out!(report, "{:>10} |", "RPM");
            for edge in disksim::CDF_BUCKETS_MS {
                out!(report, " {:>6.0}", edge);
            }
            outln!(report, " {:>6} | {:>9}", "200+", "mean ms");
            outln!(report, "{}", rule(100));

            let mut means = Vec::new();
            for &rpm in &steps {
                let stats = runs.next().expect("one replay per grid cell")?;
                let cdf = stats.cdf();
                out!(report, "{:>10.0} |", rpm);
                for &(_, frac) in &cdf[..cdf.len() - 1] {
                    out!(report, " {:>6.3}", frac);
                }
                outln!(report, " {:>6.3} | {:>9.2}", 1.0, stats.mean().to_millis());
                means.push(stats.mean().to_millis());
                results.push(WorkloadResult {
                    name: preset.name.to_string(),
                    rpm,
                    requests: stats.count(),
                    mean_ms: stats.mean().to_millis(),
                    p95_ms: stats.percentile(95.0).to_millis(),
                    cdf,
                });
            }
            outln!(report, "{}", rule(100));
            let improv_5k = (means[0] - means[1]) / means[0] * 100.0;
            let improv_10k = (means[0] - means[2]) / means[0] * 100.0;
            outln!(
                report,
                "  mean response: {:.2} -> {:.2} -> {:.2} -> {:.2} ms; +5K RPM buys {:.1}%, +10K {:.1}%",
                means[0], means[1], means[2], means[3], improv_5k, improv_10k
            );
        }
        outln!(report, "\nPaper: +5K RPM improves means by 20.8% (OLTP) to 52.5% (OpenMail);");
        outln!(report, "+10K RPM lands in the 30-60% band across workloads.");

        Ok(RunOutput::single("figure4", results.to_value(), report))
    }
}
