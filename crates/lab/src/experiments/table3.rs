//! Table 3: the spindle speed each platter size needs, year by year, to
//! hold the 40 % IDR growth target — and the steady-state temperature
//! that speed would reach.

use crate::experiments::config_object;
use crate::text::{outln, rule};
use crate::{Experiment, LabError, RunOutput};
use roadmap::{required_rpm_table, RequiredRpmRow, RoadmapConfig};
use serde::Serialize;
use serde_json::Value;

fn row_for(rows: &[RequiredRpmRow], year: i32, dia: f64) -> &RequiredRpmRow {
    rows.iter()
        .find(|r| r.year == year && (r.diameter.get() - dia).abs() < 1e-9)
        .expect("row exists")
}

/// The required-RPM table.
#[derive(Default)]
pub struct Table3;

impl Experiment for Table3 {
    fn name(&self) -> &'static str {
        "table3"
    }

    fn config(&self) -> Value {
        config_object(vec![("roadmap", "default".to_value())])
    }

    fn run(&self) -> Result<RunOutput, LabError> {
        let mut report = String::new();
        let cfg = RoadmapConfig::default();
        let rows = required_rpm_table(&cfg);

        outln!(report, "Table 3: RPM required for the 40% IDR CGR and its thermal cost");
        outln!(report, "(single platter, n_zones = 50, 3.5\" enclosure, envelope 45.22 C)");
        outln!(report, "{}", rule(112));
        outln!(
            report,
            "{:>5} | {:>9} {:>7} {:>8} | {:>9} {:>7} {:>8} | {:>9} {:>7} {:>8} | {:>9}",
            "Year",
            "2.6\" IDRd", "RPM", "Temp C",
            "2.1\" IDRd", "RPM", "Temp C",
            "1.6\" IDRd", "RPM", "Temp C",
            "IDR req"
        );
        outln!(report, "{}", rule(112));
        for year in cfg.years() {
            let r26 = row_for(&rows, year, 2.6);
            let r21 = row_for(&rows, year, 2.1);
            let r16 = row_for(&rows, year, 1.6);
            outln!(
                report,
                "{:>5} | {:>9.2} {:>7.0} {:>8.2} | {:>9.2} {:>7.0} {:>8.2} | {:>9.2} {:>7.0} {:>8.2} | {:>9.2}",
                year,
                r26.idr_density.get(),
                r26.required_rpm.get(),
                r26.steady_temp.get(),
                r21.idr_density.get(),
                r21.required_rpm.get(),
                r21.steady_temp.get(),
                r16.idr_density.get(),
                r16.required_rpm.get(),
                r16.steady_temp.get(),
                r26.idr_target.get(),
            );
        }
        outln!(report, "{}", rule(112));
        outln!(report, "Paper checkpoints: 2002 2.6\" = 15,098 RPM @ 45.24 C; 2012 2.6\" = 143,470 RPM @ 602.98 C.");
        outln!(
            report,
            "Viscous dissipation, 2.6\": {:.2} W (2002) -> {:.2} W (2009) -> {:.2} W (2012); paper: 0.91 / 35.55 / 499.73 W.",
            row_for(&rows, 2002, 2.6).viscous_power.get(),
            row_for(&rows, 2009, 2.6).viscous_power.get(),
            row_for(&rows, 2012, 2.6).viscous_power.get(),
        );

        Ok(RunOutput::single("table3", rows.to_value(), report))
    }
}
