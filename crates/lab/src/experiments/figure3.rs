//! Figure 3: cooling-system sensitivity — how 5 °C and 10 °C cooler
//! external air stretch the single-platter roadmap.

use crate::engine::{default_parallelism, parallel_map};
use crate::experiments::config_object;
use crate::text::{outln, rule};
use crate::{Experiment, LabError, RunOutput};
use roadmap::{falloff_year, roadmap_for, RoadmapConfig};
use serde::Serialize;
use serde_json::Value;
use units::{Celsius, Inches};

#[derive(Serialize)]
struct Series {
    diameter: f64,
    ambient: f64,
    falloff_year: Option<i32>,
    idr_by_year: Vec<(i32, f64, f64)>,
}

/// The cooling-sensitivity experiment (28/23/18 °C ambients).
#[derive(Default)]
pub struct Figure3;

impl Experiment for Figure3 {
    fn name(&self) -> &'static str {
        "figure3"
    }

    fn config(&self) -> Value {
        config_object(vec![("ambients", vec![28.0, 23.0, 18.0].to_value())])
    }

    fn run(&self) -> Result<RunOutput, LabError> {
        let mut report = String::new();
        let base = RoadmapConfig::default();
        outln!(report, "Figure 3: cooling the external air (baseline 28 C wet-bulb)");

        // Every (diameter, ambient) roadmap is independent; sweep the
        // 3×3 grid in parallel, then render in the fixed serial order.
        let diameters = [2.6, 2.1, 1.6];
        let ambients = [28.0, 23.0, 18.0];
        let grid: Vec<(f64, f64)> = diameters
            .iter()
            .flat_map(|&dia| ambients.iter().map(move |&amb| (dia, amb)))
            .collect();
        let roadmaps = parallel_map(grid, default_parallelism(), |(dia, amb)| {
            roadmap_for(&base, Inches::new(dia), 1, Celsius::new(amb))
        });
        let mut roadmaps = roadmaps.into_iter();

        let mut all = Vec::new();
        for dia in diameters {
            outln!(report, "\n1-Platter {dia}\" IDR roadmap under improved cooling");
            outln!(report, "{}", rule(74));
            outln!(
                report,
                "{:>5} | {:>10} | {:>12} {:>12} {:>12}",
                "Year", "Target", "Baseline", "5 C cooler", "10 C cooler"
            );
            outln!(report, "{}", rule(74));
            let series: Vec<(f64, Vec<roadmap::RoadmapPoint>)> = ambients
                .iter()
                .map(|&amb| (amb, roadmaps.next().expect("one roadmap per grid cell")))
                .collect();
            for (i, year) in base.years().enumerate() {
                outln!(
                    report,
                    "{:>5} | {:>10.1} | {:>12.1} {:>12.1} {:>12.1}",
                    year,
                    series[0].1[i].idr_target.get(),
                    series[0].1[i].max_idr.get(),
                    series[1].1[i].max_idr.get(),
                    series[2].1[i].max_idr.get(),
                );
            }
            outln!(report, "{}", rule(74));
            for (amb, pts) in &series {
                let fy = falloff_year(pts);
                outln!(
                    report,
                    "  ambient {amb:>4.1} C: max {:.0} RPM, falls off at {:?}",
                    pts[0].max_rpm.get(),
                    fy
                );
                all.push(Series {
                    diameter: dia,
                    ambient: *amb,
                    falloff_year: fy,
                    idr_by_year: pts
                        .iter()
                        .map(|p| (p.year, p.max_idr.get(), p.idr_target.get()))
                        .collect(),
                });
            }
        }
        outln!(report, "\nPaper: 5 C / 10 C of cooling lengthen the 1.6\" roadmap by one / two years;");
        outln!(report, "the terabit transition (2010) cannot be sustained by cooling alone.");

        Ok(RunOutput::single("figure3", all.to_value(), report))
    }
}
