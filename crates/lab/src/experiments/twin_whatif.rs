//! Digital-twin what-if queries, answered by the live server.
//!
//! Boots a [`disktwin::TwinServer`] in-process on an ephemeral port,
//! lets the warm fleet advance, then asks the paper's three capacity
//! questions over the wire — more drives in the rack, a hotter CRAC
//! inlet, heavier traffic — each pinned to the same snapshot epoch so
//! the answers are byte-identical across runs even though the live
//! twin keeps moving while the queries execute.

use crate::experiments::config_object;
use crate::text::outln;
use crate::{Experiment, LabError, RunOutput, Scale};
use disktwin::{query_line, ServerConfig, Twin, TwinConfig, TwinServer};
use serde::Serialize as _;
use serde_json::Value;
use std::time::{Duration, Instant};

/// The three capacity questions, as wire-format query lines (without
/// the pin and horizon, which the experiment appends).
const QUERIES: [(&str, &str); 3] = [
    ("add_drives", r#""add_drives":2"#),
    ("inlet_delta", r#""inlet_delta_c":5.0"#),
    ("traffic_scale", r#""traffic_scale":1.3"#),
];

/// The in-process twin-server what-if experiment.
pub struct TwinWhatif {
    /// Fleet size of the live twin.
    pub enclosures: usize,
    /// Snapshot epoch every query pins to.
    pub at_epoch: u64,
    /// Fork horizon in sync epochs.
    pub horizon_epochs: u64,
    /// Arrival-stream seed.
    pub seed: u64,
}

impl TwinWhatif {
    /// Paper-shaped defaults at the given scale.
    pub fn at_scale(scale: Scale) -> Self {
        match scale {
            Scale::Full => TwinWhatif {
                enclosures: 4,
                at_epoch: 4,
                horizon_epochs: 8,
                seed: 42,
            },
            Scale::Quick => TwinWhatif {
                enclosures: 2,
                at_epoch: 2,
                horizon_epochs: 2,
                seed: 42,
            },
        }
    }
}

impl Experiment for TwinWhatif {
    fn name(&self) -> &'static str {
        "twin_whatif"
    }

    fn config(&self) -> Value {
        config_object(vec![
            ("enclosures", self.enclosures.to_value()),
            ("at_epoch", self.at_epoch.to_value()),
            ("horizon_epochs", self.horizon_epochs.to_value()),
            ("seed", self.seed.to_value()),
            ("queries", QUERIES.len().to_value()),
        ])
    }

    fn run(&self) -> Result<RunOutput, LabError> {
        let fail = |e: &dyn std::fmt::Display| LabError::Experiment(format!("twin_whatif: {e}"));
        let mut config = TwinConfig::preset(workloads::oltp(), self.enclosures);
        config.seed = self.seed;
        let twin = Twin::new(config).map_err(|e| fail(&e))?;
        let server = TwinServer::start(
            twin,
            ServerConfig {
                epoch_interval_ms: 1,
                ..ServerConfig::default()
            },
        )
        .map_err(|e| fail(&e))?;
        let addr = server.addr().to_string();

        // Wait for the live twin to reach the pinned epoch.
        let deadline = Instant::now() + Duration::from_secs(60);
        while server.epoch() < self.at_epoch {
            if Instant::now() >= deadline {
                return Err(fail(&format!(
                    "twin never reached epoch {} (at {})",
                    self.at_epoch,
                    server.epoch()
                )));
            }
            std::thread::sleep(Duration::from_millis(2));
        }

        let mut report = String::new();
        outln!(
            report,
            "digital twin: {} drives, OLTP stream, queries pinned at epoch {} over a \
             {}-epoch horizon",
            self.enclosures,
            self.at_epoch,
            self.horizon_epochs
        );
        outln!(
            report,
            "{:>14} {:>14} {:>14} {:>14} {:>12}",
            "what-if",
            "peak air dC",
            "mean dms",
            "p99 dms",
            "d engaged"
        );

        let mut rows: Vec<Value> = Vec::new();
        for (label, knob) in QUERIES {
            let line = format!(
                "{{\"cmd\":\"whatif\",{knob},\"horizon_epochs\":{},\"at_epoch\":{}}}",
                self.horizon_epochs, self.at_epoch
            );
            let answer = query_line(&addr, &line, Duration::from_secs(120)).map_err(|e| fail(&e))?;
            let parsed: Value =
                serde_json::from_str(&answer).map_err(|e| LabError::Parse(e.to_string()))?;
            if parsed.get("error").is_some() {
                return Err(fail(&format!("{label} query failed: {answer}")));
            }
            let num = |key: &str| parsed.get(key).and_then(Value::as_f64).unwrap_or(f64::NAN);
            outln!(
                report,
                "{:>14} {:>14.3} {:>14.3} {:>14.3} {:>12.0}",
                label,
                num("peak_air_delta_c"),
                num("mean_response_delta_ms"),
                num("p99_response_delta_ms"),
                num("engaged_delta")
            );
            rows.push(config_object(vec![
                ("label", label.to_value()),
                ("report", parsed),
            ]));
        }
        server.stop();
        outln!(
            report,
            "all answers forked from the same immutable snapshot; rerunning reproduces \
             them byte-identically"
        );
        Ok(RunOutput::single("twin_whatif", Value::Array(rows), report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whatif_rows_are_deterministic_and_complete() {
        let exp = TwinWhatif::at_scale(Scale::Quick);
        let a = exp.run().unwrap();
        let b = exp.run().unwrap();
        assert_eq!(
            serde_json::to_string(&a.json[0].1).unwrap(),
            serde_json::to_string(&b.json[0].1).unwrap(),
            "pinned queries must reproduce byte-identically"
        );
        let rows = a.json[0].1.as_array().expect("array payload");
        assert_eq!(rows.len(), 3);
        for row in rows {
            let report = row.get("report").expect("report present");
            assert_eq!(
                report.get("from_epoch").and_then(Value::as_u64),
                Some(2),
                "answers are pinned to the requested epoch"
            );
            assert!(report.get("baseline").is_some());
            assert!(report.get("perturbed").is_some());
        }
    }
}
