//! A cooling excursion with and without dynamic thermal management.
//!
//! The paper's central claim is that DTM turns worst-case thermal
//! design into average-case design: when the inlet excursions that
//! worst-case provisioning guards against actually happen, the drive
//! sheds speed instead of data. This experiment raises the rack inlet
//! by a configured delta (ramped, then held, then released) at an exact
//! epoch boundary and runs the identical arrival stream twice — once
//! uncontrolled and once under the §5.2 speed-scaling coordinator —
//! quantifying how much over-envelope exposure DTM removes and what it
//! charges in foreground latency.
//!
//! Both runs' per-epoch timeseries are committed
//! (`scenario_cooling_free.csv`, `scenario_cooling_dtm.csv`); the
//! `engaged` column shows the coordinator tracking the excursion.

use crate::experiments::{config_object, scenario_support};
use crate::text::{outln, rule};
use crate::{Experiment, LabError, RunOutput, Scale};
use diskfleet::{Fleet, FleetConfig, FleetDtmPolicy, RoutingPolicy};
use diskscenario::{CoolingScope, EpochSample, Injection, Scenario};
use disksim::DiskSpec;
use diskthermal::{DriveThermalSpec, THERMAL_ENVELOPE};
use serde::Serialize;
use serde_json::Value;
use units::{Inches, Rpm, TempDelta};

/// Full spindle speed.
const HIGH_RPM: f64 = 15_020.0;
/// The speed-scaling coordinator's fallback speed.
const LOW_RPM: f64 = 10_000.0;

#[derive(Serialize)]
struct CoolingOutcome {
    dtm: bool,
    peak_air_c: f64,
    peak_local_ambient_c: f64,
    time_over_envelope_s: f64,
    time_scaled_s: f64,
    epochs_engaged: u64,
    completed: u64,
    mean_response_ms: f64,
    p95_response_ms: f64,
}

#[derive(Serialize)]
struct CoolingPayload {
    uncontrolled: CoolingOutcome,
    speed_scaled: CoolingOutcome,
    over_envelope_cut_pct: f64,
    p95_cost_ms: f64,
}

/// The cooling-excursion scenario experiment.
pub struct ScenarioCooling {
    /// Drives in the rack.
    pub enclosures: usize,
    /// Sync epochs to run (1 s each).
    pub epochs: u64,
    /// Epoch boundary the excursion starts at.
    pub at_epoch: u64,
    /// Epochs the raised inlet holds (including the ramp).
    pub duration_epochs: u64,
    /// Epochs the delta ramps in over.
    pub ramp_epochs: u64,
    /// Inlet rise at full hold, °C.
    pub delta_c: f64,
    /// Serial-stream airflow capacity, W/K. Sized per scale so the
    /// hottest baseline drive idles just below the coordinator's trip
    /// point and the excursion is what pushes it over.
    pub stream_w_per_k: f64,
    /// Foreground offered load, requests/s fleet-wide.
    pub rate: f64,
    /// Arrival-stream seed.
    pub seed: u64,
    /// Epoch-loop shards. Results are byte-identical at any value, so
    /// this is not part of the config digest.
    pub threads: usize,
}

impl ScenarioCooling {
    /// Paper-shaped defaults at the given scale.
    pub fn at_scale(scale: Scale) -> Self {
        match scale {
            Scale::Full => ScenarioCooling {
                enclosures: 16,
                epochs: 600,
                at_epoch: 120,
                duration_epochs: 360,
                ramp_epochs: 60,
                delta_c: 3.0,
                stream_w_per_k: 26.0,
                rate: 800.0,
                seed: 67,
                threads: disksim::par::default_parallelism(),
            },
            Scale::Quick => ScenarioCooling {
                enclosures: 8,
                epochs: 400,
                at_epoch: 60,
                duration_epochs: 240,
                ramp_epochs: 30,
                delta_c: 3.5,
                stream_w_per_k: 12.0,
                rate: 400.0,
                seed: 67,
                threads: disksim::par::default_parallelism(),
            },
        }
    }

    fn spec(&self) -> DiskSpec {
        DiskSpec::era(2002, 1, Rpm::new(HIGH_RPM))
    }

    fn run_one(&self, dtm: FleetDtmPolicy) -> Result<(Vec<EpochSample>, CoolingOutcome), LabError> {
        let fail =
            |e: &dyn std::fmt::Display| LabError::Experiment(format!("scenario_cooling: {e}"));
        let is_dtm = !matches!(dtm, FleetDtmPolicy::None);
        let mut config = FleetConfig::serial(
            self.enclosures,
            self.spec(),
            DriveThermalSpec::new(Inches::new(2.6), 1),
            self.stream_w_per_k,
        )
        .map_err(|e| fail(&e))?;
        // Round-robin, not thermal-aware: the router would steer every
        // request away from exactly the drives the coordinator slows,
        // hiding the latency cost this experiment exists to measure.
        config.routing = RoutingPolicy::RoundRobin;
        config.dtm = dtm;
        config.threads = self.threads;
        let mut fleet = Fleet::new(config).map_err(|e| fail(&e))?;
        let mut source = scenario_support::oltp_source(&self.spec(), self.rate, self.seed)?;
        let scenario = Scenario::new().with(Injection::CoolingEvent {
            at_epoch: self.at_epoch,
            duration_epochs: self.duration_epochs,
            ramp_epochs: self.ramp_epochs,
            delta_c: self.delta_c,
            scope: CoolingScope::All,
        });
        let (samples, report) =
            scenario_support::drive(&mut fleet, &mut source, scenario, self.epochs)?;
        let outcome = CoolingOutcome {
            dtm: is_dtm,
            peak_air_c: report.max_air.get(),
            peak_local_ambient_c: report.peak_local_ambient.get(),
            time_over_envelope_s: report.time_over_envelope.get(),
            time_scaled_s: report
                .per_enclosure
                .iter()
                .map(|b| b.time_scaled.get())
                .sum(),
            epochs_engaged: samples.iter().filter(|s| s.engaged > 0).count() as u64,
            completed: report.stats.count(),
            mean_response_ms: report.stats.mean().to_millis(),
            p95_response_ms: report.stats.percentile(0.95).to_millis(),
        };
        Ok((samples, outcome))
    }
}

impl Experiment for ScenarioCooling {
    fn name(&self) -> &'static str {
        "scenario_cooling"
    }

    fn config(&self) -> Value {
        config_object(vec![
            ("enclosures", self.enclosures.to_value()),
            ("epochs", self.epochs.to_value()),
            ("at_epoch", self.at_epoch.to_value()),
            ("duration_epochs", self.duration_epochs.to_value()),
            ("ramp_epochs", self.ramp_epochs.to_value()),
            ("delta_c", self.delta_c.to_value()),
            ("stream_w_per_k", self.stream_w_per_k.to_value()),
            ("rate", self.rate.to_value()),
            ("seed", self.seed.to_value()),
            ("high_rpm", HIGH_RPM.to_value()),
            ("low_rpm", LOW_RPM.to_value()),
        ])
    }

    fn run(&self) -> Result<RunOutput, LabError> {
        let (free_samples, free) = self.run_one(FleetDtmPolicy::None)?;
        let (dtm_samples, scaled) = self.run_one(FleetDtmPolicy::SpeedScale {
            high: Rpm::new(HIGH_RPM),
            low: Rpm::new(LOW_RPM),
            guard: TempDelta::new(0.3),
            resume_margin: TempDelta::new(0.6),
        })?;

        let cut_pct = if free.time_over_envelope_s > 0.0 {
            (1.0 - scaled.time_over_envelope_s / free.time_over_envelope_s) * 100.0
        } else {
            0.0
        };
        let p95_cost = scaled.p95_response_ms - free.p95_response_ms;

        let mut report = String::new();
        outln!(
            report,
            "{} drives, OLTP at {:.0} req/s; inlet +{:.1} C at epoch {} for {} epochs \
             (ramp {}), envelope {:.2} C",
            self.enclosures,
            self.rate,
            self.delta_c,
            self.at_epoch,
            self.duration_epochs,
            self.ramp_epochs,
            THERMAL_ENVELOPE.get()
        );
        outln!(report, "{}", rule(88));
        outln!(
            report,
            "{:>12} {:>10} {:>10} {:>12} {:>10} {:>10} {:>10}",
            "policy",
            "peak C",
            "amb C",
            "over-env s",
            "scaled s",
            "mean ms",
            "p95 ms"
        );
        outln!(report, "{}", rule(88));
        for o in [&free, &scaled] {
            outln!(
                report,
                "{:>12} {:>10.2} {:>10.2} {:>12.1} {:>10.1} {:>10.3} {:>10.3}",
                if o.dtm { "speed-scale" } else { "none" },
                o.peak_air_c,
                o.peak_local_ambient_c,
                o.time_over_envelope_s,
                o.time_scaled_s,
                o.mean_response_ms,
                o.p95_response_ms
            );
        }
        outln!(report, "{}", rule(88));
        outln!(
            report,
            "DTM cuts over-envelope exposure {:.1}% ({:.1} s -> {:.1} s) at a {:+.3} ms \
             p95 latency cost; coordinator engaged in {} of {} epochs",
            cut_pct,
            free.time_over_envelope_s,
            scaled.time_over_envelope_s,
            p95_cost,
            scaled.epochs_engaged,
            self.epochs
        );

        let payload = CoolingPayload {
            uncontrolled: free,
            speed_scaled: scaled,
            over_envelope_cut_pct: cut_pct,
            p95_cost_ms: p95_cost,
        };
        Ok(
            RunOutput::single("scenario_cooling", payload.to_value(), report)
                .with_file("scenario_cooling_free.csv", scenario_support::csv_of(&free_samples))
                .with_file("scenario_cooling_dtm.csv", scenario_support::csv_of(&dtm_samples)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtm_cuts_over_envelope_exposure_at_a_latency_cost() {
        let out = ScenarioCooling::at_scale(Scale::Quick).run().unwrap();
        let payload = &out.json[0].1;
        let field = |v: &Value, k: &str| v.get(k).cloned().expect("field present");
        let over = |k: &str| {
            field(&field(payload, k), "time_over_envelope_s")
                .as_f64()
                .unwrap()
        };
        assert!(
            over("uncontrolled") > 0.0,
            "the excursion must push the uncontrolled rack past the envelope"
        );
        assert!(
            over("speed_scaled") < over("uncontrolled"),
            "speed scaling must shed over-envelope time"
        );
        let engaged = field(&field(payload, "speed_scaled"), "epochs_engaged")
            .as_u64()
            .unwrap();
        assert!(engaged > 0, "the coordinator actually engaged");
        assert_eq!(out.files.len(), 2, "both timeseries are attached");
        for (name, csv) in &out.files {
            assert!(csv.starts_with("epoch,"), "{name} has its header");
        }
    }
}
