//! Figure 5: exploiting thermal slack — the RPM a multi-speed disk can
//! ramp to when the actuator is idle, and the revised IDR roadmap.

use crate::experiments::config_object;
use crate::text::{outln, rule};
use crate::{Experiment, LabError, RunOutput};
use dtm::{slack_roadmap, slack_table, SlackConfig};
use serde::Serialize;
use serde_json::Value;

/// The thermal-slack experiment; writes `figure5_slack` and
/// `figure5_roadmap` payloads.
#[derive(Default)]
pub struct Figure5;

impl Experiment for Figure5 {
    fn name(&self) -> &'static str {
        "figure5"
    }

    fn config(&self) -> Value {
        config_object(vec![("slack", "default".to_value())])
    }

    fn run(&self) -> Result<RunOutput, LabError> {
        let mut report = String::new();
        let cfg = SlackConfig::default();

        outln!(report, "Figure 5(a): thermal-design slack per platter size (1 platter)");
        outln!(report, "{}", rule(78));
        outln!(
            report,
            "{:>6} | {:>16} {:>14} {:>10} | {:>9}",
            "Size", "Envelope RPM", "VCM-off RPM", "Gain", "VCM power"
        );
        outln!(report, "{}", rule(78));
        let rows = slack_table(&cfg);
        for r in &rows {
            outln!(
                report,
                "{:>5.1}\" | {:>16.0} {:>14.0} {:>10.0} | {:>8.2} W",
                r.diameter.get(),
                r.envelope_rpm.get(),
                r.slack_rpm.get(),
                r.rpm_gain().get(),
                r.vcm_power.get()
            );
        }
        outln!(report, "{}", rule(78));
        outln!(report, "Paper: the 2.6\" drive ramps 15,020 -> 26,750 RPM; slack shrinks with");
        outln!(report, "platter size because VCM power does (2.28 W at 2.1\", 0.618 W at 1.6\").");

        outln!(report, "\nFigure 5(b): revised IDR roadmap when the slack is exploited");
        outln!(report, "{}", rule(100));
        outln!(
            report,
            "{:>5} | {:>9} | {:>9} {:>9} | {:>9} {:>9} | {:>9} {:>9}",
            "Year", "Target", "2.6\" env", "2.6\" off", "2.1\" env", "2.1\" off", "1.6\" env", "1.6\" off"
        );
        outln!(report, "{}", rule(100));
        let points = slack_roadmap(&cfg);
        for year in cfg.roadmap.years() {
            let get = |dia: f64| {
                points
                    .iter()
                    .find(|p| p.year == year && (p.diameter.get() - dia).abs() < 1e-9)
                    .expect("point exists")
            };
            let (p26, p21, p16) = (get(2.6), get(2.1), get(1.6));
            outln!(
                report,
                "{:>5} | {:>9.1} | {:>9.1} {:>9.1} | {:>9.1} {:>9.1} | {:>9.1} {:>9.1}",
                year,
                p26.idr_target.get(),
                p26.envelope_idr.get(),
                p26.slack_idr.get(),
                p21.envelope_idr.get(),
                p21.slack_idr.get(),
                p16.envelope_idr.get(),
                p16.slack_idr.get(),
            );
        }
        outln!(report, "{}", rule(100));
        outln!(report, "Paper: the 2.6\" slack design exceeds the 40% CGR curve until ~2005-06 and");
        outln!(report, "surpasses the non-slack 2.1\" design — more speed AND more capacity.");

        Ok(RunOutput {
            json: vec![
                ("figure5_slack".to_string(), rows.to_value()),
                ("figure5_roadmap".to_string(), points.to_value()),
            ],
            files: Vec::new(),
            text: report,
        })
    }
}
