//! Figure 2: the envelope-constrained roadmap — maximum attainable IDR
//! (top) and the corresponding capacity (bottom) for every platter size
//! and count, 2002–2012, against the 40 % CGR target.

use crate::experiments::config_object;
use crate::text::{outln, rule};
use crate::{Experiment, LabError, RunOutput};
use roadmap::{envelope_roadmap, falloff_year, RoadmapConfig, RoadmapPoint};
use serde::Serialize;
use serde_json::Value;

/// The envelope-roadmap experiment over the default design space.
#[derive(Default)]
pub struct Figure2;

impl Experiment for Figure2 {
    fn name(&self) -> &'static str {
        "figure2"
    }

    fn config(&self) -> Value {
        config_object(vec![("roadmap", "default".to_value())])
    }

    fn run(&self) -> Result<RunOutput, LabError> {
        let mut report = String::new();
        let cfg = RoadmapConfig::default();
        let points = envelope_roadmap(&cfg);

        for &platters in &cfg.platter_counts {
            outln!(report, "\n{}-Platter roadmap (envelope 45.22 C)", platters);
            outln!(report, "{}", rule(96));
            outln!(
                report,
                "{:>5} | {:>10} | {:>9} {:>9} {:>9} | {:>9} {:>9} {:>9}",
                "Year", "Target", "2.6\" IDR", "2.1\" IDR", "1.6\" IDR", "2.6\" GB", "2.1\" GB", "1.6\" GB"
            );
            outln!(report, "{}", rule(96));
            for year in cfg.years() {
                let get = |dia: f64| -> &RoadmapPoint {
                    points
                        .iter()
                        .find(|p| {
                            p.year == year
                                && p.platters == platters
                                && (p.diameter.get() - dia).abs() < 1e-9
                        })
                        .expect("point exists")
                };
                let (p26, p21, p16) = (get(2.6), get(2.1), get(1.6));
                let mark = |p: &RoadmapPoint| if p.meets_target() { ' ' } else { '*' };
                outln!(
                    report,
                    "{:>5} | {:>10.1} | {:>8.1}{} {:>8.1}{} {:>8.1}{} | {:>9.1} {:>9.1} {:>9.1}",
                    year,
                    p26.idr_target.get(),
                    p26.max_idr.get(),
                    mark(p26),
                    p21.max_idr.get(),
                    mark(p21),
                    p16.max_idr.get(),
                    mark(p16),
                    p26.capacity.gigabytes(),
                    p21.capacity.gigabytes(),
                    p16.capacity.gigabytes(),
                );
            }
            outln!(report, "{}", rule(96));
            for dia in [2.6, 2.1, 1.6] {
                let series: Vec<RoadmapPoint> = points
                    .iter()
                    .filter(|p| p.platters == platters && (p.diameter.get() - dia).abs() < 1e-9)
                    .copied()
                    .collect();
                let max_rpm = series[0].max_rpm.get();
                match falloff_year(&series) {
                    Some(y) => outln!(
                        report,
                        "  {dia}\": max {max_rpm:.0} RPM within envelope; falls off the 40% CGR at {y}"
                    ),
                    None => outln!(report, "  {dia}\": max {max_rpm:.0} RPM; holds the target throughout"),
                }
            }
            outln!(report, "  (* = misses the year's target; paper: 2.6\" falls off ~2003, 2.1\" ~2004-05, 1.6\" ~2006-07)");
        }

        Ok(RunOutput::single("figure2", points.to_value(), report))
    }
}
