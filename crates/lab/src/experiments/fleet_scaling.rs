//! Rack density vs temperature: how many drives can share an air stream.
//!
//! §4.2.2's airflow argument made quantitative at rack scale: every
//! drive added to a serial air stream preheats everything downstream, so
//! peak internal-air temperature climbs with drive count even though
//! per-drive load *falls* (the same fleet-wide offered load spreads over
//! more spindles). The sweep runs each fleet size uncontrolled and under
//! the §5.2 speed-scaling coordinator, showing where the envelope forces
//! DTM and what the control costs in tail latency.

use crate::experiments::config_object;
use crate::text::{outln, rule};
use crate::{Experiment, LabError, RunOutput, Scale};
use diskfleet::{Fleet, FleetConfig, FleetDtmPolicy, FleetReport};
use disksim::{DiskSpec, StorageSystem, SystemConfig};
use diskthermal::{DriveThermalSpec, THERMAL_ENVELOPE};
use serde::Serialize;
use serde_json::Value;
use units::{Inches, Rpm, TempDelta};
use workloads::{oltp, TraceGenerator};

/// Airflow stream capacity rate (W/K) between neighbouring bays.
const STREAM_W_PER_K: f64 = 12.0;
/// Fleet-wide offered load, requests/s, held fixed across sizes.
const FLEET_RATE: f64 = 480.0;
/// Full spindle speed.
const HIGH_RPM: f64 = 15_020.0;
/// The speed-scaling coordinator's fallback speed.
const LOW_RPM: f64 = 12_000.0;

#[derive(Serialize)]
struct PolicyOutcome {
    peak_air: f64,
    peak_local_ambient: f64,
    time_over_envelope_s: f64,
    time_scaled_s: f64,
    mean_response_ms: f64,
    p95_response_ms: f64,
}

#[derive(Serialize)]
struct SizeOutcome {
    enclosures: usize,
    uncontrolled: PolicyOutcome,
    speed_scaled: PolicyOutcome,
}

fn outcome(report: &FleetReport) -> PolicyOutcome {
    PolicyOutcome {
        peak_air: report.max_air.get(),
        peak_local_ambient: report.peak_local_ambient.get(),
        time_over_envelope_s: report.time_over_envelope.get(),
        time_scaled_s: report
            .per_enclosure
            .iter()
            .map(|e| e.time_scaled.get())
            .sum(),
        mean_response_ms: report.stats.mean().to_millis(),
        p95_response_ms: report.stats.percentile(0.95).to_millis(),
    }
}

/// The rack-density sweep.
pub struct FleetScaling {
    /// Requests in the shared trace.
    pub requests: usize,
    /// Fleet sizes to sweep.
    pub sizes: Vec<usize>,
    /// Trace-generator seed.
    pub seed: u64,
}

impl FleetScaling {
    /// Paper-shaped defaults at the given scale.
    pub fn at_scale(scale: Scale) -> Self {
        FleetScaling {
            // Full scale runs ~250 s of simulated time per size. The
            // air nodes relax over minutes (Figure 1's transient), so a
            // shorter run would freeze every rack at its hot-start
            // temperature and hide what the coordinator's downshift
            // actually buys.
            requests: match scale {
                Scale::Full => 120_000,
                Scale::Quick => 600,
            },
            sizes: match scale {
                Scale::Full => vec![2, 4, 6, 8, 12, 16],
                Scale::Quick => vec![2, 4, 8],
            },
            seed: 29,
        }
    }

    fn run_size(
        &self,
        enclosures: usize,
        trace: &[disksim::Request],
        dtm: FleetDtmPolicy,
    ) -> Result<FleetReport, LabError> {
        let fail =
            |e: &dyn std::fmt::Display| LabError::Experiment(format!("{enclosures} drives: {e}"));
        let mut config = FleetConfig::serial(
            enclosures,
            DiskSpec::era(2002, 1, Rpm::new(HIGH_RPM)),
            DriveThermalSpec::new(Inches::new(2.6), 1),
            STREAM_W_PER_K,
        )
        .map_err(|e| fail(&e))?;
        config.dtm = dtm;
        config.threads = disksim::par::default_parallelism();
        let fleet = Fleet::new(config).map_err(|e| fail(&e))?;
        fleet.run(trace.to_vec()).map_err(|e| fail(&e))
    }
}

impl Experiment for FleetScaling {
    fn name(&self) -> &'static str {
        "fleet_scaling"
    }

    fn config(&self) -> Value {
        config_object(vec![
            ("requests", self.requests.to_value()),
            ("sizes", self.sizes.to_value()),
            ("seed", self.seed.to_value()),
            ("stream_w_per_k", STREAM_W_PER_K.to_value()),
            ("fleet_rate", FLEET_RATE.to_value()),
            ("high_rpm", HIGH_RPM.to_value()),
            ("low_rpm", LOW_RPM.to_value()),
        ])
    }

    fn run(&self) -> Result<RunOutput, LabError> {
        let mut report = String::new();
        let fail = |e: &dyn std::fmt::Display| LabError::Experiment(format!("fleet_scaling: {e}"));

        // One OLTP-shaped trace shared by every size, so the offered
        // load is identical and only the rack density moves.
        let capacity = StorageSystem::new(SystemConfig::single_disk(DiskSpec::era(
            2002,
            1,
            Rpm::new(HIGH_RPM),
        )))
        .map_err(|e| fail(&e))?
        .logical_sectors();
        let preset = oltp();
        let generator = TraceGenerator::new(
            preset.profile.clone(),
            preset.arrivals.with_mean_rate(FLEET_RATE),
            1,
            capacity,
        )
        .map_err(|e| fail(&e))?;
        let trace = generator.generate(self.requests, self.seed);

        outln!(
            report,
            "serial airflow at {STREAM_W_PER_K} W/K, OLTP-shaped load fixed at \
             {FLEET_RATE:.0} req/s fleet-wide, envelope {:.2} C",
            THERMAL_ENVELOPE.get()
        );
        outln!(report, "{}", rule(110));
        outln!(
            report,
            "{:>7} {:>16} {:>16} {:>13} {:>13} {:>16} {:>16}",
            "drives",
            "free peak C",
            "dtm peak C",
            "free p95 ms",
            "dtm p95 ms",
            "over-env s",
            "scaled s"
        );
        outln!(report, "{}", rule(110));

        let mut outcomes = Vec::new();
        for &enclosures in &self.sizes {
            let free = self.run_size(enclosures, &trace, FleetDtmPolicy::None)?;
            let scaled = self.run_size(
                enclosures,
                &trace,
                FleetDtmPolicy::SpeedScale {
                    high: Rpm::new(HIGH_RPM),
                    low: Rpm::new(LOW_RPM),
                    guard: TempDelta::new(0.3),
                    resume_margin: TempDelta::new(0.3),
                },
            )?;
            let (free, scaled) = (outcome(&free), outcome(&scaled));
            outln!(
                report,
                "{:>7} {:>16.2} {:>16.2} {:>13.2} {:>13.2} {:>16.1} {:>16.1}",
                enclosures,
                free.peak_air,
                scaled.peak_air,
                free.p95_response_ms,
                scaled.p95_response_ms,
                free.time_over_envelope_s,
                scaled.time_scaled_s
            );
            outcomes.push(SizeOutcome {
                enclosures,
                uncontrolled: free,
                speed_scaled: scaled,
            });
        }

        outln!(report, "{}", rule(110));
        let first = &outcomes[0];
        let last = &outcomes[outcomes.len() - 1];
        outln!(
            report,
            "densifying {} -> {} drives raises the uncontrolled peak {:.2} C -> {:.2} C; \
             speed scaling holds it to {:.2} C",
            first.enclosures,
            last.enclosures,
            first.uncontrolled.peak_air,
            last.uncontrolled.peak_air,
            last.speed_scaled.peak_air
        );

        Ok(RunOutput::single(
            "fleet_scaling",
            outcomes.to_value(),
            report,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_heats_and_dtm_cools() {
        let out = FleetScaling::at_scale(Scale::Quick).run().unwrap();
        let rows = out.json[0].1.as_array().expect("array payload").clone();
        assert_eq!(rows.len(), 3);
        let peak = |row: &Value, policy: &str| {
            row.get(policy)
                .and_then(|p| p.get("peak_air"))
                .and_then(Value::as_f64)
                .unwrap()
        };
        assert!(
            peak(&rows[2], "uncontrolled") > peak(&rows[0], "uncontrolled"),
            "a denser rack must run hotter: {} vs {}",
            peak(&rows[2], "uncontrolled"),
            peak(&rows[0], "uncontrolled")
        );
        for row in &rows {
            assert!(
                peak(row, "speed_scaled") <= peak(row, "uncontrolled"),
                "speed scaling must never heat the rack"
            );
        }
    }
}
