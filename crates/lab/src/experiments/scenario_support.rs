//! Shared plumbing for the scenario experiments: the OLTP arrival
//! source they all replay, the driver wrapper, and per-epoch CSV
//! rendering.

use crate::LabError;
use diskfleet::{Fleet, FleetReport};
use diskscenario::{run_scenario, ArrivalSource, EpochSample, Scenario, ScenarioEngine};
use disksim::{DiskSpec, StorageSystem, SystemConfig};
use workloads::{oltp, search_engine, TraceGenerator, WorkloadPreset};

/// An endless OLTP-shaped Poisson stream at `rate` requests/s over the
/// logical capacity of one `spec` drive.
pub(crate) fn oltp_source(
    spec: &DiskSpec,
    rate: f64,
    seed: u64,
) -> Result<ArrivalSource, LabError> {
    preset_source(oltp(), spec, rate, seed)
}

/// A read-heavy (98 % read) Poisson stream at `rate` requests/s. The
/// rebuild-storm experiment uses this so degraded-read fan-out is not
/// offset by the cheaper degraded writes (RAID-5 reconstruct-writes
/// skip the read-modify-write parity ops a healthy array pays).
pub(crate) fn read_mostly_source(
    spec: &DiskSpec,
    rate: f64,
    seed: u64,
) -> Result<ArrivalSource, LabError> {
    preset_source(search_engine(), spec, rate, seed)
}

fn preset_source(
    preset: WorkloadPreset,
    spec: &DiskSpec,
    rate: f64,
    seed: u64,
) -> Result<ArrivalSource, LabError> {
    let fail = |e: &dyn std::fmt::Display| LabError::Experiment(format!("scenario source: {e}"));
    let capacity = StorageSystem::new(SystemConfig::single_disk(spec.clone()))
        .map_err(|e| fail(&e))?
        .logical_sectors();
    let generator = TraceGenerator::new(
        preset.profile.clone(),
        preset.arrivals.with_mean_rate(rate),
        1,
        capacity,
    )
    .map_err(|e| fail(&e))?;
    Ok(ArrivalSource::Synthetic(generator.stream(seed)))
}

/// Steps `fleet` through `epochs` boundaries under `scenario`, returning
/// the per-epoch samples and the final fleet report.
pub(crate) fn drive(
    fleet: &mut Fleet,
    source: &mut ArrivalSource,
    scenario: Scenario,
    epochs: u64,
) -> Result<(Vec<EpochSample>, FleetReport), LabError> {
    let mut engine = ScenarioEngine::new(scenario);
    let mut samples = Vec::new();
    run_scenario(
        fleet,
        source,
        &mut engine,
        epochs,
        &mut diskobs::Sink::null(),
        &mut samples,
    )
    .map_err(|e| LabError::Experiment(format!("scenario run: {e}")))?;
    let report = fleet.report();
    Ok((samples, report))
}

/// Renders samples as the committed CSV timeseries (header + one row
/// per epoch, fixed-precision floats for deterministic bytes).
pub(crate) fn csv_of(samples: &[EpochSample]) -> String {
    let mut out = String::from(EpochSample::csv_header());
    out.push('\n');
    for s in samples {
        out.push_str(&s.to_csv_row());
        out.push('\n');
    }
    out
}
