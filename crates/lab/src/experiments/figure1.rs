//! Figure 1: warm-up transient of the modeled Seagate Cheetah 15K.3.
//!
//! Starts every node at the 28 °C external temperature with SPM and VCM
//! always on, and records the internal-air temperature minute by minute
//! until steady state — the curve the paper used to set the 45.22 °C
//! thermal envelope.

use crate::experiments::config_object;
use crate::text::{ascii_plot, outln, rule};
use crate::{Experiment, LabError, RunOutput};
use serde::Serialize;
use serde_json::Value;
use thermodisk::prelude::*;
use units::Seconds;

#[derive(Serialize)]
struct Sample {
    minute: f64,
    air: f64,
    spindle: f64,
    base: f64,
    vcm: f64,
}

/// The warm-up transient experiment.
pub struct Figure1 {
    /// Simulated wall-clock minutes to record.
    pub minutes: u32,
}

impl Default for Figure1 {
    fn default() -> Self {
        Figure1 { minutes: 150 }
    }
}

impl Experiment for Figure1 {
    fn name(&self) -> &'static str {
        "figure1"
    }

    fn config(&self) -> Value {
        config_object(vec![("minutes", self.minutes.to_value())])
    }

    fn run(&self) -> Result<RunOutput, LabError> {
        let mut report = String::new();
        let model = ThermalModel::new(DriveThermalSpec::cheetah_15k3());
        let op = OperatingPoint::seeking(Rpm::new(15_000.0));
        let steady = model.steady_air_temp(op);

        outln!(report, "Figure 1: Cheetah 15K.3 warm-up (ambient 28 C, SPM+VCM on)");
        outln!(report, "{}", rule(64));
        outln!(report, "{:>7} {:>9} {:>9} {:>9} {:>9}", "min", "air C", "spindle", "base", "vcm");

        let mut sim = TransientSim::from_ambient(&model);
        let mut samples = Vec::new();
        let mut reached_steady_at = None;
        for minute in 0..=self.minutes {
            let t = sim.temps();
            if minute % 5 == 0 || minute <= 3 {
                outln!(
                    report,
                    "{:>7} {:>9.2} {:>9.2} {:>9.2} {:>9.2}",
                    minute,
                    t.air.get(),
                    t.spindle.get(),
                    t.base.get(),
                    t.vcm.get()
                );
            }
            samples.push(Sample {
                minute: minute as f64,
                air: t.air.get(),
                spindle: t.spindle.get(),
                base: t.base.get(),
                vcm: t.vcm.get(),
            });
            if reached_steady_at.is_none() && (steady - t.air).get() < 0.1 {
                reached_steady_at = Some(minute);
            }
            sim.advance(&model, op, Seconds::new(60.0));
        }
        outln!(report, "{}", rule(64));
        outln!(
            report,
            "steady state {:.2} C (paper: 45.22 C) reached after ~{} min (paper: ~48 min)",
            steady.get(),
            reached_steady_at.unwrap_or(self.minutes)
        );
        outln!(
            report,
            "with the ~10 C electronics adder the paper cites: {:.1} C vs the drive's rated 55 C",
            steady.get() + 10.0
        );

        let curve: Vec<(f64, f64)> = samples.iter().map(|s| (s.minute, s.air)).collect();
        outln!(report, "\ninternal air temperature vs minutes:");
        outln!(report, "{}", ascii_plot(&[("air C", &curve)], 60, 12));

        Ok(RunOutput::single("figure1", samples.to_value(), report))
    }
}
