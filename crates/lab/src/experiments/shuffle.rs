//! §5.4 extension: disk shuffling as a DTM enhancer.
//!
//! Co-locating hot data (Ruemmler–Wilkes organ-pipe placement) cuts arm
//! travel, which cuts actuator duty, which lowers the operating
//! temperature — buying thermal headroom that the slack mechanism of
//! §5.2 can spend on RPM.

use crate::experiments::config_object;
use crate::text::{outln, rule};
use crate::{Experiment, LabError, RunOutput, Scale};
use disksim::{AccessHistogram, DiskSpec, ShuffleMap, StorageSystem, SystemConfig};
use diskthermal::{
    max_rpm_within_envelope, DriveThermalSpec, EnvelopeSearch, OperatingPoint, ThermalModel,
    THERMAL_ENVELOPE,
};
use serde::Serialize;
use serde_json::Value;
use units::{Inches, Rpm};
use workloads::oltp;

#[derive(Serialize)]
struct Outcome {
    label: String,
    mean_seek_distance: f64,
    seek_duty: f64,
    steady_temp: f64,
    slack_rpm: f64,
    mean_response_ms: f64,
}

/// The organ-pipe shuffling experiment.
pub struct Shuffle {
    /// Requests in the generated OLTP-like trace.
    pub requests: usize,
    /// Trace-generator seed.
    pub seed: u64,
}

impl Shuffle {
    /// Paper-shaped defaults at the given scale.
    pub fn at_scale(scale: Scale) -> Self {
        Shuffle {
            requests: match scale {
                Scale::Full => 40_000,
                Scale::Quick => 4_000,
            },
            seed: 17,
        }
    }
}

impl Experiment for Shuffle {
    fn name(&self) -> &'static str {
        "shuffle"
    }

    fn config(&self) -> Value {
        config_object(vec![
            ("requests", self.requests.to_value()),
            ("seed", self.seed.to_value()),
        ])
    }

    fn run(&self) -> Result<RunOutput, LabError> {
        let mut report = String::new();
        let fail = |e: &dyn std::fmt::Display| LabError::Experiment(format!("shuffle: {e}"));

        // A skewed OLTP-like stream on one 2.6" drive at the envelope speed.
        let rpm = Rpm::new(15_020.0);
        let spec = DiskSpec::era(2002, 1, rpm);
        let capacity = StorageSystem::new(SystemConfig::single_disk(spec.clone()))
            .map_err(|e| fail(&e))?
            .logical_sectors();
        let mut preset = oltp();
        preset.disks = 1;
        let trace = {
            // Regenerate against this device's capacity.
            let gen = workloads::TraceGenerator::new(
                preset.profile.clone(),
                workloads::ArrivalModel::Poisson { rate: 90.0 },
                1,
                capacity,
            )
            .map_err(|e| fail(&e))?;
            gen.generate(self.requests, self.seed)
        };

        let histogram = AccessHistogram::from_trace(&trace, capacity, 4_096);
        outln!(
            report,
            "access skew: hottest 32 extents carry {:.0}% of accesses",
            histogram.concentration(32) * 100.0
        );

        let run = |label: &str, trace: &[disksim::Request]| -> Result<Outcome, LabError> {
            let mut sys =
                StorageSystem::new(SystemConfig::single_disk(spec.clone())).map_err(|e| fail(&e))?;
            for r in trace {
                sys.submit(*r).map_err(|e| fail(&e))?;
            }
            let done = sys.drain();
            let mean_ms = done
                .iter()
                .map(|c| c.response_time().to_millis())
                .sum::<f64>()
                / done.len() as f64;
            let disk = &sys.disks()[0];
            let duty = (disk.seek_time().get() / sys.clock().get()).clamp(0.0, 1.0);

            // Thermal consequence: the measured duty sets the steady
            // temperature, and the headroom below the envelope converts to
            // extra RPM a multi-speed disk could use.
            let model = ThermalModel::new(DriveThermalSpec::new(Inches::new(2.6), 1));
            let steady = model.steady_air_temp(OperatingPoint::new(rpm, duty));
            let slack_rpm =
                max_rpm_within_envelope(&model, duty, THERMAL_ENVELOPE, EnvelopeSearch::default())
                    .map(|r| r.get())
                    .unwrap_or(0.0);
            Ok(Outcome {
                label: label.into(),
                mean_seek_distance: disk.mean_seek_distance(),
                seek_duty: duty,
                steady_temp: steady.get(),
                slack_rpm,
                mean_response_ms: mean_ms,
            })
        };

        let baseline = run("original placement", &trace)?;
        let shuffled_trace = ShuffleMap::organ_pipe(&histogram).apply(&trace);
        let shuffled = run("organ-pipe shuffled", &shuffled_trace)?;

        outln!(report, "{}", rule(96));
        outln!(
            report,
            "{:<22} {:>14} {:>10} {:>12} {:>12} {:>12}",
            "placement", "mean seek cyl", "VCM duty", "steady C", "slack RPM", "mean resp"
        );
        outln!(report, "{}", rule(96));
        for o in [&baseline, &shuffled] {
            outln!(
                report,
                "{:<22} {:>14.0} {:>10.3} {:>12.2} {:>12.0} {:>9.2} ms",
                o.label, o.mean_seek_distance, o.seek_duty, o.steady_temp, o.slack_rpm, o.mean_response_ms
            );
        }
        outln!(report, "{}", rule(96));
        outln!(
            report,
            "shuffling cut arm travel {:.0}x, freeing {:.0} RPM of thermal headroom",
            baseline.mean_seek_distance / shuffled.mean_seek_distance.max(1.0),
            shuffled.slack_rpm - baseline.slack_rpm
        );

        Ok(RunOutput::single(
            "shuffle",
            vec![baseline, shuffled].to_value(),
            report,
        ))
    }
}
