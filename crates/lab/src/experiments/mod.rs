//! The ported experiment implementations — one module per table/figure.
//!
//! Each module holds an [`Experiment`](crate::Experiment) whose `run`
//! builds the same text report the old `bench` binary printed and the
//! same JSON payload(s) it saved, so regenerated artifacts keep their
//! shape.

pub mod capacity_plan;
pub mod figure1;
pub mod figure2;
pub mod figure3;
pub mod figure4;
pub mod figure5;
pub mod figure7;
pub mod fleet_hall;
pub mod fleet_routing;
pub mod fleet_scaling;
pub mod formfactor;
pub mod plan;
pub mod scenario_cooling;
pub mod scenario_diurnal;
pub mod scenario_rebuild;
mod scenario_support;
pub mod shuffle;
pub mod table1;
pub mod table3;
pub mod twin_whatif;

use serde_json::{Map, Value};

/// Builds a config object from key/value pairs, preserving order.
pub(crate) fn config_object(entries: Vec<(&str, Value)>) -> Value {
    let mut map = Map::new();
    for (k, v) in entries {
        map.insert(k, v);
    }
    Value::Object(map)
}
