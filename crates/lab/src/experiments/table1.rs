//! Table 1 (and Table 2): model validation against thirteen real SCSI
//! drives.
//!
//! Reports, per drive, the datasheet capacity/IDR, the paper's model
//! values, and this library's model values, with relative errors.

use crate::experiments::config_object;
use crate::text::{outln, rule};
use crate::{Experiment, LabError, RunOutput};
use serde::Serialize;
use serde_json::Value;
use thermodisk::drives::{TABLE1, TABLE2};

#[derive(Serialize)]
struct Row {
    model: &'static str,
    year: i32,
    rpm: f64,
    datasheet_capacity_gb: f64,
    paper_capacity_gb: f64,
    our_capacity_gb: f64,
    capacity_error_vs_datasheet: f64,
    datasheet_idr: f64,
    paper_idr: f64,
    our_idr: f64,
    idr_error_vs_datasheet: f64,
}

/// The drive-validation tables.
#[derive(Default)]
pub struct Table1;

impl Experiment for Table1 {
    fn name(&self) -> &'static str {
        "table1"
    }

    fn config(&self) -> Value {
        config_object(vec![("n_zones", 30u32.to_value())])
    }

    fn run(&self) -> Result<RunOutput, LabError> {
        let mut report = String::new();
        outln!(report, "Table 1: capacity and IDR model validation (n_zones = 30)");
        outln!(report, "{}", rule(118));
        outln!(
            report,
            "{:<26} {:>4} {:>6} | {:>8} {:>8} {:>8} {:>7} | {:>8} {:>8} {:>8} {:>7}",
            "Model", "Year", "RPM", "Cap (DS)", "Cap (pp)", "Cap (us)", "err %",
            "IDR (DS)", "IDR (pp)", "IDR (us)", "err %"
        );
        outln!(report, "{}", rule(118));

        let fail = |model: &str, e: &dyn std::fmt::Display| {
            LabError::Experiment(format!("table1: {model}: {e}"))
        };
        let mut rows = Vec::new();
        let mut cap_errs = Vec::new();
        let mut idr_errs = Vec::new();
        for d in &TABLE1 {
            let cap = d
                .model_capacity()
                .map_err(|e| fail(d.model, &e))?
                .gigabytes();
            let idr = d.model_idr().map_err(|e| fail(d.model, &e))?.get();
            let cap_err = d.capacity_error().map_err(|e| fail(d.model, &e))?;
            let idr_err = d.idr_error().map_err(|e| fail(d.model, &e))?;
            cap_errs.push(cap_err.abs());
            idr_errs.push(idr_err.abs());
            outln!(
                report,
                "{:<26} {:>4} {:>6.0} | {:>8.1} {:>8.1} {:>8.1} {:>6.1}% | {:>8.1} {:>8.1} {:>8.1} {:>6.1}%",
                d.model,
                d.year,
                d.rpm,
                d.datasheet_capacity_gb,
                d.paper_model_capacity_gb,
                cap,
                cap_err * 100.0,
                d.datasheet_idr,
                d.paper_model_idr,
                idr,
                idr_err * 100.0,
            );
            rows.push(Row {
                model: d.model,
                year: d.year,
                rpm: d.rpm,
                datasheet_capacity_gb: d.datasheet_capacity_gb,
                paper_capacity_gb: d.paper_model_capacity_gb,
                our_capacity_gb: cap,
                capacity_error_vs_datasheet: cap_err,
                datasheet_idr: d.datasheet_idr,
                paper_idr: d.paper_model_idr,
                our_idr: idr,
                idr_error_vs_datasheet: idr_err,
            });
        }
        outln!(report, "{}", rule(118));
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        outln!(
            report,
            "mean |error| vs datasheet: capacity {:.1}% (paper: within ~12%), IDR {:.1}% (paper: within ~15%)",
            mean(&cap_errs) * 100.0,
            mean(&idr_errs) * 100.0
        );

        outln!(report, "\nTable 2: rated maximum operating temperatures (datasheets)");
        outln!(report, "{}", rule(72));
        for r in &TABLE2 {
            outln!(
                report,
                "{:<26} {:>4} {:>6.0} RPM  wet-bulb {:>4.1} C  max oper. {:>4.1} C",
                r.model, r.year, r.rpm, r.external_wet_bulb, r.max_operating
            );
        }
        outln!(report, "{}", rule(72));
        outln!(report, "The ~5 C spread across years/speeds supports a time-invariant envelope.");

        Ok(RunOutput::single("table1", rows.to_value(), report))
    }
}
