//! The §4 methodology, automated: which design the paper's four-step
//! procedure picks each year, and when it runs out of options.

use crate::experiments::config_object;
use crate::text::{outln, rule};
use crate::{Experiment, LabError, RunOutput};
use roadmap::{plan_roadmap, RoadmapConfig};
use serde::Serialize;
use serde_json::Value;

/// The automated roadmap-planning walk.
#[derive(Default)]
pub struct Plan;

impl Experiment for Plan {
    fn name(&self) -> &'static str {
        "plan"
    }

    fn config(&self) -> Value {
        config_object(vec![("roadmap", "default".to_value())])
    }

    fn run(&self) -> Result<RunOutput, LabError> {
        let mut report = String::new();
        let cfg = RoadmapConfig::default();
        let plan = plan_roadmap(&cfg);

        outln!(report, "Automated §4 methodology walk (envelope 45.22 C)");
        outln!(report, "{}", rule(100));
        outln!(
            report,
            "{:>5} | {:>14} | {:>6} {:>9} {:>9} | {:>9} {:>9} | {:>9}",
            "Year", "Step", "Size", "Platters", "RPM", "IDR", "Target", "Capacity"
        );
        outln!(report, "{}", rule(100));
        for y in &plan {
            outln!(
                report,
                "{:>5} | {:>14} | {:>5.1}\" {:>9} {:>9.0} | {:>9.1} {:>9.1} | {:>7.1} GB{}",
                y.year,
                format!("{:?}", y.step),
                y.diameter.get(),
                y.platters,
                y.rpm.get(),
                y.idr.get(),
                y.idr_target.get(),
                y.capacity.gigabytes(),
                if y.meets_target() { "" } else { "  *" }
            );
        }
        outln!(report, "{}", rule(100));
        outln!(report, "(* = target missed; the methodology reports its best-IDR fallback)");
        let last_met = plan.iter().filter(|y| y.meets_target()).map(|y| y.year).max();
        outln!(
            report,
            "the design space sustains the 40% CGR through {:?}; paper: ~2006 with 25%/14% growth after",
            last_met
        );

        Ok(RunOutput::single("plan", plan.to_value(), report))
    }
}
