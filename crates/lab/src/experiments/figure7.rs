//! Figures 6 and 7: dynamic throttling — the throttling ratio
//! `t_heat / t_cool` as a function of the cooling interval, for both
//! throttle mechanisms of Figure 6.

use crate::engine::{default_parallelism, parallel_map};
use crate::experiments::config_object;
use crate::text::{ascii_plot, outln, rule};
use crate::{Experiment, LabError, RunOutput};
use dtm::ThrottleExperiment;
use serde::Serialize;
use serde_json::Value;
use units::Seconds;

#[derive(Serialize)]
struct Curve {
    label: String,
    feasible_note: String,
    points: Vec<(f64, f64)>,
}

/// The dynamic-throttling experiment over a sweep of cooling intervals.
pub struct Figure7 {
    /// Cooling intervals swept, in seconds.
    pub t_cools: Vec<f64>,
}

impl Default for Figure7 {
    fn default() -> Self {
        Figure7 {
            t_cools: vec![0.25, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0],
        }
    }
}

impl Experiment for Figure7 {
    fn name(&self) -> &'static str {
        "figure7"
    }

    fn config(&self) -> Value {
        config_object(vec![("t_cools", self.t_cools.to_value())])
    }

    fn run(&self) -> Result<RunOutput, LabError> {
        let mut report = String::new();

        // Figure 6 feasibility checks first.
        let (exp_a, policy_a) = ThrottleExperiment::figure7a();
        let (exp_b, policy_b) = ThrottleExperiment::figure7b();
        outln!(report, "Figure 6 feasibility:");
        outln!(
            report,
            "  (a) 24,534 RPM, VCM-only:    cooling point steady = {:.2} C (paper 44.07; must be < 45.22) -> {}",
            exp_a
                .model_steady(policy_a.cooling_point())
                .get(),
            if exp_a.is_feasible(policy_a) { "feasible" } else { "infeasible" }
        );
        let vcm_only_37k = dtm::ThrottlePolicy::VcmOnly {
            rpm: units::Rpm::new(37_001.0),
        };
        outln!(
            report,
            "  (b) 37,001 RPM, VCM-only:    cooling point steady = {:.2} C (paper 53.04; above envelope) -> {}",
            exp_b.model_steady(vcm_only_37k.cooling_point()).get(),
            if exp_b.is_feasible(vcm_only_37k) { "feasible" } else { "infeasible" }
        );
        outln!(
            report,
            "  (b) 37,001/22,001 RPM drop:  cooling point steady = {:.2} C -> {}",
            exp_b.model_steady(policy_b.cooling_point()).get(),
            if exp_b.is_feasible(policy_b) { "feasible" } else { "infeasible" }
        );

        let mechanisms = [
            (
                "Figure 7(a): 2.6\" @ 24,534 RPM, VCM-only throttling",
                &exp_a,
                policy_a,
                "paper: ratio ~1.6-1.8 at small t_cool, below 1 past ~1 s",
            ),
            (
                "Figure 7(b): 2.6\" @ 37,001 RPM, VCM off + drop to 22,001 RPM",
                &exp_b,
                policy_b,
                "paper: similar shape, slightly higher ratios",
            ),
        ];

        // Each point of the mechanism × t_cool grid is an independent
        // transient simulation; sweep the whole grid in parallel and
        // reassemble the per-curve points in the original order.
        let grid: Vec<(usize, f64)> = (0..mechanisms.len())
            .flat_map(|ci| self.t_cools.iter().map(move |&t| (ci, t)))
            .collect();
        let ratios = parallel_map(grid, default_parallelism(), |(ci, t)| {
            let (_, exp, policy, _) = mechanisms[ci];
            exp.throttling_ratio(policy, Seconds::new(t)).map(|r| (t, r))
        });

        let mut curves = Vec::new();
        for (ci, (label, _, _, note)) in mechanisms.into_iter().enumerate() {
            outln!(report, "\n{label}");
            outln!(report, "{}", rule(44));
            outln!(report, "{:>8} | {:>16}", "t_cool s", "throttling ratio");
            outln!(report, "{}", rule(44));
            let pts: Vec<(f64, f64)> = ratios[ci * self.t_cools.len()..][..self.t_cools.len()]
                .iter()
                .filter_map(|&p| p)
                .collect();
            for &(t, r) in &pts {
                let marker = if r >= 1.0 { "  (utilization > 50%)" } else { "" };
                outln!(report, "{:>8.2} | {:>16.2}{marker}", t, r);
            }
            outln!(report, "{}", rule(44));
            outln!(report, "  {note}");
            curves.push(Curve {
                label: label.to_string(),
                feasible_note: note.to_string(),
                points: pts,
            });
        }

        outln!(report, "\nThrottling ratio vs t_cool (both mechanisms):");
        let a: Vec<(f64, f64)> = curves[0].points.clone();
        let b: Vec<(f64, f64)> = curves[1].points.clone();
        outln!(report, "{}", ascii_plot(&[("7(a) VCM-only", &a), ("7(b) VCM+RPM drop", &b)], 56, 12));

        outln!(report, "Conclusion (matches §5.3): keeping the disk busy at least half the time");
        outln!(report, "requires throttling at a fine granularity — around a second or less.");

        Ok(RunOutput::single("figure7", curves.to_value(), report))
    }
}
