//! A compressed diurnal day plus a flash crowd on a machine-room hall.
//!
//! §4.2.2's hall does not see a flat load: real fleets breathe with the
//! day and occasionally absorb a flash crowd. This experiment drives a
//! hall (1,024 drives at full scale) through one compressed 24-"hour"
//! diurnal cycle — each sync epoch standing in for an hour — with a
//! multiplicative flash crowd layered on top near the crest, and traces
//! how the thermal envelope is approached by traffic alone: no failure,
//! no cooling event, just load.
//!
//! The traffic shaping rescales the arrival source at epoch boundaries
//! (future gaps only), so the run stays byte-identical at any shard
//! count. The per-epoch timeseries is committed as
//! `scenario_diurnal.csv`; its `traffic_factor` column is the applied
//! diurnal-times-flash multiplier.

use crate::experiments::{config_object, scenario_support};
use crate::text::{outln, rule};
use crate::{Experiment, LabError, RunOutput, Scale};
use diskfleet::{AirflowGraph, Fleet, FleetConfig, RoutingPolicy};
use diskscenario::{EpochSample, Injection, Scenario};
use disksim::DiskSpec;
use diskthermal::{DriveThermalSpec, THERMAL_ENVELOPE};
use serde::Serialize;
use serde_json::Value;
use units::{Inches, Rpm};

/// Drives per rack.
const PER_RACK: usize = 16;
/// Racks per row.
const RACKS_PER_ROW: usize = 8;
/// Intra-rack preheat, K/W per upstream drive.
const K_DRIVE: f64 = 4.0e-3;
/// Within-row preheat, K/W of each earlier rack's total heat.
const K_RACK: f64 = 1.2e-4;
/// Row-to-row recirculation, K/W of each earlier row's total heat.
const K_ROW: f64 = 2.0e-4;

#[derive(Serialize)]
struct PhaseOutcome {
    label: String,
    epochs: u64,
    peak_air_c: f64,
    peak_traffic_factor: f64,
}

#[derive(Serialize)]
struct DiurnalPayload {
    drives: usize,
    epochs: u64,
    completed: u64,
    mean_response_ms: f64,
    p95_response_ms: f64,
    peak_air_c: f64,
    time_over_envelope_s: f64,
    trough: PhaseOutcome,
    crest: PhaseOutcome,
    flash: PhaseOutcome,
}

/// The diurnal-plus-flash-crowd hall experiment.
pub struct ScenarioDiurnal {
    /// Drives in the hall.
    pub drives: usize,
    /// Sync epochs to run; each stands in for one hour.
    pub epochs: u64,
    /// Epochs per diurnal cycle.
    pub period_epochs: u64,
    /// Diurnal swing around the mean rate (0.5 = ±50%).
    pub amplitude: f64,
    /// Epoch boundary the flash crowd lands on.
    pub flash_at_epoch: u64,
    /// Epochs the flash crowd lasts.
    pub flash_epochs: u64,
    /// Multiplier the flash crowd layers on the diurnal rate.
    pub flash_factor: f64,
    /// Mean offered load, requests/s fleet-wide.
    pub rate: f64,
    /// Arrival-stream seed.
    pub seed: u64,
    /// Epoch-loop shards. Results are byte-identical at any value, so
    /// this is not part of the config digest.
    pub threads: usize,
}

impl ScenarioDiurnal {
    /// Paper-shaped defaults at the given scale: one compressed day on
    /// the 1,024-drive hall, flash crowd near the diurnal crest.
    pub fn at_scale(scale: Scale) -> Self {
        match scale {
            Scale::Full => ScenarioDiurnal {
                drives: 1_024,
                epochs: 48,
                period_epochs: 24,
                amplitude: 0.5,
                flash_at_epoch: 30,
                flash_epochs: 4,
                flash_factor: 3.0,
                rate: 2_000.0,
                seed: 71,
                threads: disksim::par::default_parallelism(),
            },
            Scale::Quick => ScenarioDiurnal {
                drives: 128,
                epochs: 16,
                period_epochs: 8,
                amplitude: 0.5,
                flash_at_epoch: 10,
                flash_epochs: 3,
                flash_factor: 3.0,
                rate: 500.0,
                seed: 71,
                threads: disksim::par::default_parallelism(),
            },
        }
    }

    fn spec(&self) -> DiskSpec {
        DiskSpec::era(2002, 1, Rpm::new(15_020.0))
    }

    fn fleet(&self) -> Result<Fleet, LabError> {
        let fail =
            |e: &dyn std::fmt::Display| LabError::Experiment(format!("scenario_diurnal: {e}"));
        let thermal = DriveThermalSpec::new(Inches::new(2.6), 1);
        let airflow = AirflowGraph::hall(
            self.drives,
            PER_RACK,
            RACKS_PER_ROW,
            thermal.ambient(),
            K_DRIVE,
            K_RACK,
            K_ROW,
        )
        .map_err(|e| fail(&e))?;
        let mut config = FleetConfig::serial(self.drives, self.spec(), thermal, 1.0)
            .map_err(|e| fail(&e))?;
        config.airflow = airflow;
        config.routing = RoutingPolicy::ThermalAware {
            envelope: THERMAL_ENVELOPE,
        };
        config.threads = self.threads;
        Fleet::new(config).map_err(|e| fail(&e))
    }

    /// Summarizes the samples whose epochs `keep` selects.
    fn phase(samples: &[EpochSample], label: &str, keep: impl Fn(u64) -> bool) -> PhaseOutcome {
        let picked: Vec<&EpochSample> = samples.iter().filter(|s| keep(s.epoch)).collect();
        PhaseOutcome {
            label: label.to_string(),
            epochs: picked.len() as u64,
            peak_air_c: picked.iter().map(|s| s.peak_air_c).fold(f64::MIN, f64::max),
            peak_traffic_factor: picked
                .iter()
                .map(|s| s.traffic_factor)
                .fold(f64::MIN, f64::max),
        }
    }
}

impl Experiment for ScenarioDiurnal {
    fn name(&self) -> &'static str {
        "scenario_diurnal"
    }

    fn config(&self) -> Value {
        config_object(vec![
            ("drives", self.drives.to_value()),
            ("epochs", self.epochs.to_value()),
            ("period_epochs", self.period_epochs.to_value()),
            ("amplitude", self.amplitude.to_value()),
            ("flash_at_epoch", self.flash_at_epoch.to_value()),
            ("flash_epochs", self.flash_epochs.to_value()),
            ("flash_factor", self.flash_factor.to_value()),
            ("rate", self.rate.to_value()),
            ("seed", self.seed.to_value()),
            ("per_rack", PER_RACK.to_value()),
            ("racks_per_row", RACKS_PER_ROW.to_value()),
            ("k_drive", K_DRIVE.to_value()),
            ("k_rack", K_RACK.to_value()),
            ("k_row", K_ROW.to_value()),
        ])
    }

    fn run(&self) -> Result<RunOutput, LabError> {
        let mut fleet = self.fleet()?;
        let mut source = scenario_support::oltp_source(&self.spec(), self.rate, self.seed)?;
        let scenario = Scenario::new().with(Injection::TrafficShape {
            diurnal_period_epochs: self.period_epochs,
            diurnal_amplitude: self.amplitude,
            flash_at_epoch: Some(self.flash_at_epoch),
            flash_epochs: self.flash_epochs,
            flash_factor: self.flash_factor,
        });
        let (samples, fleet_report) =
            scenario_support::drive(&mut fleet, &mut source, scenario, self.epochs)?;

        // Phase windows by epoch number (epochs in samples are
        // 1-based completion counts; injections key on the 0-based
        // boundary, so shift by one).
        let flash = |e: u64| {
            e > self.flash_at_epoch && e <= self.flash_at_epoch + self.flash_epochs
        };
        let half = self.period_epochs / 2;
        let crest = |e: u64| !flash(e) && (e - 1) % self.period_epochs < half;
        let trough = |e: u64| !flash(e) && !crest(e);
        let trough_out = Self::phase(&samples, "trough", trough);
        let crest_out = Self::phase(&samples, "crest", crest);
        let flash_out = Self::phase(&samples, "flash", flash);

        let mut report = String::new();
        outln!(
            report,
            "{} drives as rows of {} racks x {} bays; diurnal period {} epochs (swing {:.0}%), \
             flash crowd x{:.1} at epoch {} for {}; mean load {:.0} req/s",
            self.drives,
            RACKS_PER_ROW,
            PER_RACK,
            self.period_epochs,
            self.amplitude * 100.0,
            self.flash_factor,
            self.flash_at_epoch,
            self.flash_epochs,
            self.rate
        );
        outln!(report, "{}", rule(72));
        outln!(
            report,
            "{:>8} {:>8} {:>14} {:>16}",
            "phase",
            "epochs",
            "peak air C",
            "peak traffic x"
        );
        outln!(report, "{}", rule(72));
        for p in [&trough_out, &crest_out, &flash_out] {
            outln!(
                report,
                "{:>8} {:>8} {:>14.2} {:>16.3}",
                p.label,
                p.epochs,
                p.peak_air_c,
                p.peak_traffic_factor
            );
        }
        outln!(report, "{}", rule(72));
        outln!(
            report,
            "hall peak {:.2} C (envelope {:.2} C), over-envelope {:.1} s; {} requests, \
             mean {:.3} ms, p95 {:.3} ms",
            fleet_report.max_air.get(),
            THERMAL_ENVELOPE.get(),
            fleet_report.time_over_envelope.get(),
            fleet_report.stats.count(),
            fleet_report.stats.mean().to_millis(),
            fleet_report.stats.percentile(0.95).to_millis()
        );

        let payload = DiurnalPayload {
            drives: self.drives,
            epochs: self.epochs,
            completed: fleet_report.stats.count(),
            mean_response_ms: fleet_report.stats.mean().to_millis(),
            p95_response_ms: fleet_report.stats.percentile(0.95).to_millis(),
            peak_air_c: fleet_report.max_air.get(),
            time_over_envelope_s: fleet_report.time_over_envelope.get(),
            trough: trough_out,
            crest: crest_out,
            flash: flash_out,
        };
        Ok(
            RunOutput::single("scenario_diurnal", payload.to_value(), report)
                .with_file("scenario_diurnal.csv", scenario_support::csv_of(&samples)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flash_crowd_outruns_the_diurnal_crest() {
        let out = ScenarioDiurnal::at_scale(Scale::Quick).run().unwrap();
        let payload = &out.json[0].1;
        let field = |v: &Value, k: &str| v.get(k).cloned().expect("field present");
        let peak = |k: &str| field(&field(payload, k), "peak_air_c").as_f64().unwrap();
        let factor = |k: &str| {
            field(&field(payload, k), "peak_traffic_factor")
                .as_f64()
                .unwrap()
        };
        assert!(
            factor("flash") > 2.0,
            "the flash multiplier is in force ({})",
            factor("flash")
        );
        assert!(
            factor("crest") > factor("trough"),
            "the diurnal swing moves the offered load"
        );
        assert!(
            peak("flash") > peak("trough"),
            "flash-crowd heat shows up in the hall ({} vs {})",
            peak("flash"),
            peak("trough")
        );
        let (_, csv) = &out.files[0];
        assert_eq!(csv.lines().count() as u64, 16 + 1);
    }
}
