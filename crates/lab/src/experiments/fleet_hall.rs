//! A machine-room hall at 10k-drive scale: rows of racks of drives.
//!
//! §4.2.2 scales past one rack: a data-center hall recirculates some of
//! every row's exhaust into the rows behind it, so the thermal picture
//! is hierarchical — bay position inside the rack, rack position inside
//! the row, row position inside the hall. The hierarchical
//! [`AirflowGraph::hall`] makes that coupling O(n), and the fleet's
//! split-phase epoch boundary keeps the whole 10,000-drive simulation
//! near-linear in shard count; this experiment is the scale proof. It
//! runs the hall uncontrolled and under the §5.2 speed-scaling
//! coordinator and reports per-row aggregates: the row gradient is the
//! hall-scale analogue of the rack-density sweep's bay gradient.
//!
//! Results are byte-identical at any `threads`, which is pinned by an
//! integration test; the shard-scaling wall-clock claim itself lives in
//! `BENCH_fleet.json`.

use crate::experiments::config_object;
use crate::text::{outln, rule};
use crate::{Experiment, LabError, RunOutput, Scale};
use diskfleet::{AirflowGraph, Fleet, FleetConfig, FleetDtmPolicy, FleetReport, RoutingPolicy};
use disksim::{DiskSpec, StorageSystem, SystemConfig};
use diskthermal::{DriveThermalSpec, THERMAL_ENVELOPE};
use serde::Serialize;
use serde_json::Value;
use units::{Inches, Rpm, TempDelta};
use workloads::{oltp, TraceGenerator};

/// Drives per rack.
const PER_RACK: usize = 20;
/// Racks per row.
const RACKS_PER_ROW: usize = 25;
/// Intra-rack preheat, K/W per upstream drive.
const K_DRIVE: f64 = 4.0e-3;
/// Within-row preheat, K/W of each earlier rack's total heat.
const K_RACK: f64 = 1.2e-4;
/// Row-to-row recirculation, K/W of each earlier row's total heat.
/// Sized so the back third of the full 20-row hall runs past the
/// envelope uncontrolled — the regime where speed scaling engages.
const K_ROW: f64 = 7.0e-5;
/// Full spindle speed.
const HIGH_RPM: f64 = 15_020.0;
/// The speed-scaling coordinator's fallback speed.
const LOW_RPM: f64 = 12_000.0;

#[derive(Serialize)]
struct RowOutcome {
    row: usize,
    racks: usize,
    drives: usize,
    peak_air: f64,
    peak_local_ambient: f64,
    mean_air: f64,
    time_over_envelope_s: f64,
    time_scaled_s: f64,
}

#[derive(Serialize)]
struct HallOutcome {
    drives: usize,
    rows: usize,
    peak_air: f64,
    peak_local_ambient: f64,
    time_over_envelope_s: f64,
    mean_response_ms: f64,
    p95_response_ms: f64,
    epochs: u64,
    rows_detail: Vec<RowOutcome>,
}

#[derive(Serialize)]
struct HallPayload {
    uncontrolled: HallOutcome,
    speed_scaled: HallOutcome,
}

/// Splits a fleet report into per-row aggregates.
fn rows_of(report: &FleetReport) -> Vec<RowOutcome> {
    let per_row = PER_RACK * RACKS_PER_ROW;
    report
        .per_enclosure
        .chunks(per_row)
        .enumerate()
        .map(|(row, bays)| RowOutcome {
            row,
            racks: bays.len().div_ceil(PER_RACK),
            drives: bays.len(),
            peak_air: bays.iter().map(|b| b.max_air.get()).fold(f64::MIN, f64::max),
            peak_local_ambient: bays
                .iter()
                .map(|b| b.max_local_ambient.get())
                .fold(f64::MIN, f64::max),
            mean_air: bays.iter().map(|b| b.mean_air.get()).sum::<f64>() / bays.len() as f64,
            time_over_envelope_s: bays.iter().map(|b| b.time_over_envelope.get()).sum(),
            time_scaled_s: bays.iter().map(|b| b.time_scaled.get()).sum(),
        })
        .collect()
}

fn outcome(report: &FleetReport) -> HallOutcome {
    let rows_detail = rows_of(report);
    HallOutcome {
        drives: report.enclosures,
        rows: rows_detail.len(),
        peak_air: report.max_air.get(),
        peak_local_ambient: report.peak_local_ambient.get(),
        time_over_envelope_s: report.time_over_envelope.get(),
        mean_response_ms: report.stats.mean().to_millis(),
        p95_response_ms: report.stats.percentile(0.95).to_millis(),
        epochs: report.epochs,
        rows_detail,
    }
}

/// The hall-scale fleet experiment.
pub struct FleetHall {
    /// Drives in the hall.
    pub drives: usize,
    /// Requests in the shared trace.
    pub requests: usize,
    /// Fleet-wide offered load, requests/s.
    pub rate: f64,
    /// Trace-generator seed.
    pub seed: u64,
    /// Epoch-loop shards. Results are byte-identical at any value, so
    /// this is not part of the config digest.
    pub threads: usize,
}

impl FleetHall {
    /// Paper-shaped defaults at the given scale: the full hall is
    /// 10,000 drives (20 rows of 25 racks of 20 bays).
    pub fn at_scale(scale: Scale) -> Self {
        let (drives, requests, rate) = match scale {
            Scale::Full => (10_000, 40_000, 2_000.0),
            Scale::Quick => (1_000, 2_400, 600.0),
        };
        FleetHall {
            drives,
            requests,
            rate,
            seed: 31,
            threads: disksim::par::default_parallelism(),
        }
    }

    fn run_hall(
        &self,
        trace: &[disksim::Request],
        dtm: FleetDtmPolicy,
    ) -> Result<FleetReport, LabError> {
        let fail = |e: &dyn std::fmt::Display| {
            LabError::Experiment(format!("fleet_hall ({} drives): {e}", self.drives))
        };
        let airflow = AirflowGraph::hall(
            self.drives,
            PER_RACK,
            RACKS_PER_ROW,
            DriveThermalSpec::new(Inches::new(2.6), 1).ambient(),
            K_DRIVE,
            K_RACK,
            K_ROW,
        )
        .map_err(|e| fail(&e))?;
        let mut config = FleetConfig::serial(
            self.drives,
            DiskSpec::era(2002, 1, Rpm::new(HIGH_RPM)),
            DriveThermalSpec::new(Inches::new(2.6), 1),
            1.0,
        )
        .map_err(|e| fail(&e))?;
        config.airflow = airflow;
        config.routing = RoutingPolicy::ThermalAware {
            envelope: THERMAL_ENVELOPE,
        };
        config.dtm = dtm;
        config.threads = self.threads;
        let fleet = Fleet::new(config).map_err(|e| fail(&e))?;
        fleet.run(trace.to_vec()).map_err(|e| fail(&e))
    }
}

impl Experiment for FleetHall {
    fn name(&self) -> &'static str {
        "fleet_hall"
    }

    fn config(&self) -> Value {
        config_object(vec![
            ("drives", self.drives.to_value()),
            ("requests", self.requests.to_value()),
            ("rate", self.rate.to_value()),
            ("seed", self.seed.to_value()),
            ("per_rack", PER_RACK.to_value()),
            ("racks_per_row", RACKS_PER_ROW.to_value()),
            ("k_drive", K_DRIVE.to_value()),
            ("k_rack", K_RACK.to_value()),
            ("k_row", K_ROW.to_value()),
            ("high_rpm", HIGH_RPM.to_value()),
            ("low_rpm", LOW_RPM.to_value()),
        ])
    }

    fn run(&self) -> Result<RunOutput, LabError> {
        let mut report = String::new();
        let fail = |e: &dyn std::fmt::Display| LabError::Experiment(format!("fleet_hall: {e}"));

        let capacity = StorageSystem::new(SystemConfig::single_disk(DiskSpec::era(
            2002,
            1,
            Rpm::new(HIGH_RPM),
        )))
        .map_err(|e| fail(&e))?
        .logical_sectors();
        let preset = oltp();
        let generator = TraceGenerator::new(
            preset.profile.clone(),
            preset.arrivals.with_mean_rate(self.rate),
            1,
            capacity,
        )
        .map_err(|e| fail(&e))?;
        let trace = generator.generate(self.requests, self.seed);

        let free = self.run_hall(&trace, FleetDtmPolicy::None)?;
        let scaled = self.run_hall(
            &trace,
            FleetDtmPolicy::SpeedScale {
                high: Rpm::new(HIGH_RPM),
                low: Rpm::new(LOW_RPM),
                guard: TempDelta::new(0.3),
                resume_margin: TempDelta::new(0.3),
            },
        )?;
        let payload = HallPayload {
            uncontrolled: outcome(&free),
            speed_scaled: outcome(&scaled),
        };

        outln!(
            report,
            "{} drives as rows of {} racks x {} bays; thermal-aware routing, \
             OLTP-shaped load at {:.0} req/s fleet-wide, envelope {:.2} C",
            self.drives,
            RACKS_PER_ROW,
            PER_RACK,
            self.rate,
            THERMAL_ENVELOPE.get()
        );
        outln!(report, "{}", rule(96));
        outln!(
            report,
            "{:>4} {:>14} {:>14} {:>14} {:>14} {:>14} {:>14}",
            "row",
            "free peak C",
            "dtm peak C",
            "free amb C",
            "free mean C",
            "over-env s",
            "scaled s"
        );
        outln!(report, "{}", rule(96));
        for (f, s) in payload
            .uncontrolled
            .rows_detail
            .iter()
            .zip(&payload.speed_scaled.rows_detail)
        {
            outln!(
                report,
                "{:>4} {:>14.2} {:>14.2} {:>14.2} {:>14.2} {:>14.1} {:>14.1}",
                f.row,
                f.peak_air,
                s.peak_air,
                f.peak_local_ambient,
                f.mean_air,
                f.time_over_envelope_s,
                s.time_scaled_s
            );
        }
        outln!(report, "{}", rule(96));
        outln!(
            report,
            "hall peak {:.2} C uncontrolled vs {:.2} C speed-scaled; \
             over-envelope {:.0} s vs {:.0} s; p95 {:.2} ms vs {:.2} ms over {} epochs",
            payload.uncontrolled.peak_air,
            payload.speed_scaled.peak_air,
            payload.uncontrolled.time_over_envelope_s,
            payload.speed_scaled.time_over_envelope_s,
            payload.uncontrolled.p95_response_ms,
            payload.speed_scaled.p95_response_ms,
            payload.uncontrolled.epochs
        );

        Ok(RunOutput::single("fleet_hall", payload.to_value(), report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn later_rows_run_hotter_and_dtm_cools() {
        let out = FleetHall::at_scale(Scale::Quick).run().unwrap();
        let payload = &out.json[0].1;
        let field = |v: &Value, k: &str| v.get(k).cloned().expect("field present");
        let free_hall = field(payload, "uncontrolled");
        let rows = field(&free_hall, "rows_detail");
        let rows = rows.as_array().expect("row details");
        assert!(rows.len() >= 2, "the quick hall still has multiple rows");
        let amb = |r: &Value| field(r, "peak_local_ambient").as_f64().unwrap();
        let (first, last) = (amb(&rows[0]), amb(&rows[rows.len() - 1]));
        assert!(
            last > first,
            "row recirculation must preheat later rows: {last} vs {first}"
        );
        let free = field(&free_hall, "peak_air").as_f64().unwrap();
        let dtm = field(&field(payload, "speed_scaled"), "peak_air")
            .as_f64()
            .unwrap();
        assert!(dtm <= free, "speed scaling must never heat the hall");
        let over = |v: &Value| field(v, "time_over_envelope_s").as_f64().unwrap();
        assert!(
            over(&field(payload, "speed_scaled")) <= over(&free_hall),
            "speed scaling must not add over-envelope time"
        );
    }
}
