//! Two-stage capacity planning: how many drives fit a rack under the
//! thermal envelope at an acceptable tail latency?
//!
//! The §4.2.2 question asked forward — given a geometry, how hot does
//! it run? — capacity planning asks inverted: given the envelope, how
//! dense can the hall get? Answering by brute force costs one full
//! fleet simulation per candidate configuration. This experiment runs
//! the search in two stages instead:
//!
//! 1. a **training sweep** ([`SweepSpec`]) evaluates the full simulator
//!    on a coarse knob grid, in parallel, and fits a
//!    [`GridSurrogate`] to the flattened metric targets;
//! 2. the surrogate **screens** a dense candidate set (every integer
//!    rack density across every rate/geometry/inlet/DTM combination)
//!    against the envelope and tail-latency constraints at
//!    interpolation cost, and only the feasibility **frontier** — the
//!    densest feasible rack per combination plus the first infeasible
//!    density above it — is re-run through the full simulator, which
//!    has the final word.
//!
//! Between the stages, held-out sweep points (grid-cell midpoints that
//! never entered the fit) are predicted and compared against their
//! simulated truth; the run **fails loudly** if the screening outputs
//! (`peak_air_c`, `p95_ms`) miss by more than [`TOLERANCE`] relative
//! error. All cross-validation errors — including the DTM engagement
//! rate, whose thresholded knee a grid interpolant cannot capture and
//! which no constraint reads — are committed in the results.
//!
//! Results are byte-identical at any `threads`: the sweep runs through
//! the order-preserving work-stealing pool and every point is a pure
//! function of its coordinates.

use crate::experiments::config_object;
use crate::sweep::{SweepSpec, KNOBS, PER_RACK_AXIS, PRESET_SLUGS};
use crate::text::{outln, rule};
use crate::{Experiment, LabError, RunOutput, Scale};
use disksurrogate::{cross_validate, frontier, screen, Constraint, CrossValidation, GridSurrogate};
use diskthermal::THERMAL_ENVELOPE;
use serde::Serialize;
use serde_json::Value;

/// Relative-error tolerance the screening outputs must meet on the
/// held-out points.
pub const TOLERANCE: f64 = 0.10;

/// The p95 response-time bound a feasible configuration must hold.
pub const P95_LIMIT_MS: f64 = 15.0;

/// The outputs screening constraints read — the ones the
/// cross-validation gate applies to.
pub const GATE_OUTPUTS: [&str; 2] = ["peak_air_c", "p95_ms"];

#[derive(Serialize)]
struct VerifiedCandidate {
    coords: Vec<f64>,
    surrogate: Vec<(String, f64)>,
    simulated: Vec<(String, f64)>,
    screen_feasible: bool,
    sim_feasible: bool,
}

#[derive(Serialize)]
struct PlanRow {
    rate: f64,
    racks_per_row: usize,
    inlet_c: f64,
    dtm: u8,
    /// Densest per_rack the screen found feasible (0: none feasible).
    max_per_rack: usize,
    /// Drives in the winning hall (0 when nothing was feasible).
    max_drives: usize,
    /// The full simulator agreed the winning density is feasible.
    confirmed: bool,
    verified_peak_air_c: f64,
    verified_p95_ms: f64,
}

#[derive(Serialize)]
struct PresetOutcome {
    preset: String,
    grid_points: usize,
    holdout_points: usize,
    cross_validation: CrossValidation,
    candidates_screened: usize,
    frontier_verified: usize,
    verification_agreements: usize,
    verified: Vec<VerifiedCandidate>,
    plan: Vec<PlanRow>,
}

#[derive(Serialize)]
struct PlanPayload {
    envelope_c: f64,
    p95_limit_ms: f64,
    tolerance: f64,
    gate_outputs: Vec<String>,
    full_sims: usize,
    candidates_screened: usize,
    presets: Vec<PresetOutcome>,
}

/// The two-stage capacity-planning experiment.
pub struct CapacityPlan {
    /// Requests per simulated trace.
    pub requests: usize,
    /// Rows per hall.
    pub rows: usize,
    /// Trace seed.
    pub seed: u64,
    /// Grid nodes per knob (see [`KNOBS`] for the order).
    pub rates: Vec<f64>,
    /// Rack-density grid nodes; candidates densify to every integer in
    /// this range.
    pub per_rack: Vec<f64>,
    /// Racks-per-row grid nodes.
    pub racks_per_row: Vec<f64>,
    /// Inlet-temperature grid nodes.
    pub inlets_c: Vec<f64>,
    /// Sweep-pool workers. Results are byte-identical at any value, so
    /// this is not part of the config digest.
    pub threads: usize,
}

impl CapacityPlan {
    /// Grid sizes at the given scale. Both scales keep the envelope
    /// boundary inside the swept range (the probe point: a 32 °C inlet
    /// puts the 45.22 °C envelope at a rack density of 12–16 bays).
    pub fn at_scale(scale: Scale) -> Self {
        let (requests, rows, rates, per_rack, racks_per_row, inlets_c) = match scale {
            Scale::Full => (
                2_000,
                2,
                vec![200.0, 400.0, 600.0],
                vec![4.0, 16.0, 32.0],
                vec![2.0, 4.0],
                vec![28.0, 32.0],
            ),
            Scale::Quick => (
                300,
                1,
                vec![200.0, 400.0],
                vec![4.0, 8.0],
                vec![2.0],
                vec![28.0, 32.0],
            ),
        };
        CapacityPlan {
            requests,
            rows,
            seed: 23,
            rates,
            per_rack,
            racks_per_row,
            inlets_c,
            threads: crate::engine::default_parallelism(),
        }
    }

    fn sweep_for(&self, preset: &str) -> SweepSpec {
        SweepSpec {
            preset: preset.to_string(),
            rows: self.rows,
            requests: self.requests,
            seed: self.seed,
            rates: self.rates.clone(),
            per_rack: self.per_rack.clone(),
            racks_per_row: self.racks_per_row.clone(),
            inlets_c: self.inlets_c.clone(),
            dtm: vec![0.0, 1.0],
        }
    }

    /// Every integer rack density across every combination of the other
    /// knob nodes — the dense stage-1 candidate set.
    fn candidates(&self) -> Vec<Vec<f64>> {
        let lo = self.per_rack.first().copied().unwrap_or(1.0) as usize;
        let hi = self.per_rack.last().copied().unwrap_or(1.0) as usize;
        let mut out = Vec::new();
        for &rate in &self.rates {
            for pr in lo..=hi {
                for &racks in &self.racks_per_row {
                    for &inlet in &self.inlets_c {
                        for dtm in [0.0, 1.0] {
                            out.push(vec![rate, pr as f64, racks, inlet, dtm]);
                        }
                    }
                }
            }
        }
        out
    }

    fn plan_preset(&self, preset: &str) -> Result<(PresetOutcome, usize), LabError> {
        let fail = |stage: &str, e: &dyn std::fmt::Display| {
            LabError::Experiment(format!("capacity_plan/{preset} {stage}: {e}"))
        };
        let sweep = self.sweep_for(preset);

        // Stage 1a: training sweep + fit.
        let grid = sweep.grid();
        let train = sweep.run(&grid, self.threads)?;
        let model = GridSurrogate::fit(sweep.axes()?, &train).map_err(|e| fail("fit", &e))?;

        // Stage 1b: held-out cross-validation, gated on the outputs the
        // screen reads. Failure here is a hard error by design: a
        // surrogate that cannot reproduce held-out simulator points has
        // no business screening candidates.
        let holdout = sweep.holdout();
        let truth = sweep.run(&holdout, self.threads)?;
        let cv = cross_validate(&model, &truth).map_err(|e| fail("cross-validation", &e))?;
        cv.gate_outputs(&GATE_OUTPUTS, TOLERANCE)
            .map_err(|e| fail("cross-validation gate", &e))?;

        // Stage 1c: screen the dense candidate set.
        let constraints = vec![
            Constraint {
                output: "peak_air_c".into(),
                max: THERMAL_ENVELOPE.get(),
            },
            Constraint {
                output: "p95_ms".into(),
                max: P95_LIMIT_MS,
            },
        ];
        let candidates = self.candidates();
        let screened =
            screen(&model, &candidates, &constraints).map_err(|e| fail("screen", &e))?;

        // Stage 2: full-sim verification of the feasibility frontier.
        let picks = frontier(&screened, PER_RACK_AXIS);
        let verify_points: Vec<Vec<f64>> =
            picks.iter().map(|&i| screened[i].coords.clone()).collect();
        let verified_truth = sweep.run(&verify_points, self.threads)?;
        let sim_feasible_at = |outputs: &[(String, f64)]| {
            constraints.iter().all(|c| {
                outputs
                    .iter()
                    .find(|(n, _)| *n == c.output)
                    .map(|(_, v)| *v <= c.max)
                    .unwrap_or(false)
            })
        };
        let verified: Vec<VerifiedCandidate> = picks
            .iter()
            .zip(&verified_truth)
            .map(|(&i, truth)| VerifiedCandidate {
                coords: screened[i].coords.clone(),
                surrogate: screened[i].predictions.clone(),
                simulated: truth.outputs.clone(),
                screen_feasible: screened[i].feasible,
                sim_feasible: sim_feasible_at(&truth.outputs),
            })
            .collect();
        let agreements = verified
            .iter()
            .filter(|v| v.screen_feasible == v.sim_feasible)
            .count();

        // The plan: per knob combination, the screen's densest feasible
        // rack, with the simulator's verdict and measured outputs.
        let mut plan = Vec::new();
        for &rate in &self.rates {
            for &racks in &self.racks_per_row {
                for &inlet in &self.inlets_c {
                    for dtm in [0.0, 1.0] {
                        let in_group = |c: &[f64]| {
                            c[0] == rate && c[2] == racks && c[3] == inlet && c[4] == dtm
                        };
                        let best = verified
                            .iter()
                            .filter(|v| in_group(&v.coords) && v.screen_feasible)
                            .max_by(|a, b| {
                                a.coords[PER_RACK_AXIS].total_cmp(&b.coords[PER_RACK_AXIS])
                            });
                        let output = |v: &VerifiedCandidate, name: &str| {
                            v.simulated
                                .iter()
                                .find(|(n, _)| n == name)
                                .map(|(_, x)| *x)
                                .unwrap_or(f64::NAN)
                        };
                        let max_per_rack =
                            best.map(|v| v.coords[PER_RACK_AXIS] as usize).unwrap_or(0);
                        plan.push(PlanRow {
                            rate,
                            racks_per_row: racks as usize,
                            inlet_c: inlet,
                            dtm: dtm as u8,
                            max_per_rack,
                            max_drives: max_per_rack * racks as usize * self.rows,
                            confirmed: best.map(|v| v.sim_feasible).unwrap_or(false),
                            verified_peak_air_c: best
                                .map(|v| output(v, "peak_air_c"))
                                .unwrap_or(f64::NAN),
                            verified_p95_ms: best
                                .map(|v| output(v, "p95_ms"))
                                .unwrap_or(f64::NAN),
                        });
                    }
                }
            }
        }

        let full_sims = train.len() + truth.len() + verified_truth.len();
        Ok((
            PresetOutcome {
                preset: preset.to_string(),
                grid_points: grid.len(),
                holdout_points: holdout.len(),
                cross_validation: cv,
                candidates_screened: candidates.len(),
                frontier_verified: picks.len(),
                verification_agreements: agreements,
                verified,
                plan,
            },
            full_sims,
        ))
    }
}

impl Experiment for CapacityPlan {
    fn name(&self) -> &'static str {
        "capacity_plan"
    }

    fn config(&self) -> Value {
        config_object(vec![
            ("requests", self.requests.to_value()),
            ("rows", self.rows.to_value()),
            ("seed", self.seed.to_value()),
            ("rates", self.rates.to_value()),
            ("per_rack", self.per_rack.to_value()),
            ("racks_per_row", self.racks_per_row.to_value()),
            ("inlets_c", self.inlets_c.to_value()),
            ("presets", PRESET_SLUGS.to_vec().to_value()),
            ("knobs", KNOBS.to_vec().to_value()),
            ("envelope_c", THERMAL_ENVELOPE.get().to_value()),
            ("p95_limit_ms", P95_LIMIT_MS.to_value()),
            ("tolerance", TOLERANCE.to_value()),
        ])
    }

    fn run(&self) -> Result<RunOutput, LabError> {
        let mut outcomes = Vec::new();
        let mut full_sims = 0;
        for preset in PRESET_SLUGS {
            let (outcome, sims) = self.plan_preset(preset)?;
            outcomes.push(outcome);
            full_sims += sims;
        }
        let candidates_screened: usize = outcomes.iter().map(|o| o.candidates_screened).sum();

        let mut report = String::new();
        outln!(
            report,
            "two-stage capacity plan: envelope {:.2} C, p95 <= {:.1} ms; \
             {} candidates screened by surrogate, {} full simulations \
             (training + holdout + frontier verification)",
            THERMAL_ENVELOPE.get(),
            P95_LIMIT_MS,
            candidates_screened,
            full_sims
        );
        for outcome in &outcomes {
            outln!(report, "{}", rule(86));
            outln!(
                report,
                "{}: {} grid + {} holdout sims; cross-validation max rel err {:.4} ({}), \
                 gate {:.2} on {:?}; frontier {} verified, {} verdicts agree",
                outcome.preset,
                outcome.grid_points,
                outcome.holdout_points,
                outcome.cross_validation.max_rel_err,
                outcome.cross_validation.worst_output,
                TOLERANCE,
                GATE_OUTPUTS,
                outcome.frontier_verified,
                outcome.verification_agreements
            );
            outln!(
                report,
                "{:>6} {:>6} {:>8} {:>4} {:>9} {:>7} {:>10} {:>9} {:>9}",
                "rate",
                "racks",
                "inlet C",
                "dtm",
                "max/rack",
                "drives",
                "confirmed",
                "peak C",
                "p95 ms"
            );
            for row in &outcome.plan {
                outln!(
                    report,
                    "{:>6.0} {:>6} {:>8.1} {:>4} {:>9} {:>7} {:>10} {:>9.2} {:>9.2}",
                    row.rate,
                    row.racks_per_row,
                    row.inlet_c,
                    row.dtm,
                    row.max_per_rack,
                    row.max_drives,
                    row.confirmed,
                    row.verified_peak_air_c,
                    row.verified_p95_ms
                );
            }
        }

        let payload = PlanPayload {
            envelope_c: THERMAL_ENVELOPE.get(),
            p95_limit_ms: P95_LIMIT_MS,
            tolerance: TOLERANCE,
            gate_outputs: GATE_OUTPUTS.iter().map(|s| s.to_string()).collect(),
            full_sims,
            candidates_screened,
            presets: outcomes,
        };
        Ok(RunOutput::single(
            "capacity_plan",
            payload.to_value(),
            report,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_plan_screens_verifies_and_gates() {
        let out = CapacityPlan::at_scale(Scale::Quick).run().unwrap();
        let payload = &out.json[0].1;
        let field = |v: &Value, k: &str| v.get(k).cloned().expect("field present");
        let presets = field(payload, "presets");
        let presets = presets.as_array().expect("preset outcomes");
        assert_eq!(presets.len(), 5);
        let screened = field(payload, "candidates_screened").as_u64().unwrap();
        let sims = field(payload, "full_sims").as_u64().unwrap();
        assert!(
            screened > sims,
            "the screen must cover more candidates ({screened}) than \
             the full simulator ran ({sims})"
        );
        for preset in presets {
            let cv = field(preset, "cross_validation");
            let per_output = field(&cv, "per_output");
            for entry in per_output.as_array().expect("per-output errors") {
                let pair = entry.as_array().expect("(name, err) pair");
                let name = pair[0].as_str().unwrap();
                let err = pair[1].as_f64().unwrap();
                if GATE_OUTPUTS.contains(&name) {
                    assert!(
                        err <= TOLERANCE,
                        "{}: gated output {name} err {err} exceeds {TOLERANCE}",
                        field(preset, "preset")
                    );
                }
            }
            let plan = field(preset, "plan");
            let plan = plan.as_array().expect("plan rows");
            assert!(!plan.is_empty());
            // At the coolest inlet the whole range is feasible; the
            // screen should find a nonzero density somewhere.
            assert!(
                plan.iter()
                    .any(|r| field(r, "max_per_rack").as_u64().unwrap() > 0),
                "no feasible density found for {}",
                field(preset, "preset")
            );
        }
    }

    #[test]
    fn candidates_densify_the_per_rack_range() {
        let plan = CapacityPlan::at_scale(Scale::Quick);
        let candidates = plan.candidates();
        let lo = plan.per_rack.first().copied().unwrap() as usize;
        let hi = plan.per_rack.last().copied().unwrap() as usize;
        let densities: std::collections::BTreeSet<usize> = candidates
            .iter()
            .map(|c| c[PER_RACK_AXIS] as usize)
            .collect();
        assert_eq!(densities.len(), hi - lo + 1);
    }
}
