//! RAID-5 rebuild storm under foreground load.
//!
//! §6's failure argument in fleet form: when a member of a RAID-5
//! enclosure dies, the array serves reads degraded (every access to the
//! lost disk fans out across the survivors) while the rebuild streams
//! reconstruction I/O at a configured rate. Faster rebuild shortens the
//! exposure window but steals more bandwidth and adds more heat — this
//! experiment sweeps the rebuild rate and quantifies that trade against
//! an unfailed baseline on the identical arrival stream. The foreground
//! load is read-heavy (98 % reads) so the fan-out cost is not offset by
//! degraded writes, which are *cheaper* than healthy read-modify-write.
//!
//! The failure is injected at an exact epoch boundary by the scenario
//! engine, so the whole run is byte-identical at any shard count
//! (pinned by `lab_determinism`). The highest-rate run's per-epoch
//! timeseries is committed as `scenario_rebuild.csv`.

use crate::experiments::{config_object, scenario_support};
use crate::text::{outln, rule};
use crate::{Experiment, LabError, RunOutput, Scale};
use diskfleet::{EnclosureArray, Fleet, FleetConfig, RebuildSpec, RoutingPolicy};
use diskscenario::{EpochSample, Injection, Scenario};
use disksim::DiskSpec;
use diskthermal::DriveThermalSpec;
use serde::Serialize;
use serde_json::Value;
use units::{Inches, Rpm};

/// Disks per RAID-5 enclosure.
const ARRAY_DISKS: u32 = 4;
/// Stripe unit, sectors. Large stripes bound the degraded fan-out cost.
const STRIPE_SECTORS: u32 = 65_536;
/// Reconstruction read size per rebuild request, sectors.
const CHUNK_SECTORS: u32 = 16_384;

#[derive(Serialize)]
struct RebuildOutcome {
    rebuild_rate_sectors_per_sec: f64,
    repaired_at_epoch: Option<u64>,
    rebuilt_fraction: f64,
    completed: u64,
    mean_response_ms: f64,
    p95_response_ms: f64,
    peak_air_c: f64,
    time_over_envelope_s: f64,
}

#[derive(Serialize)]
struct RebuildPayload {
    baseline: RebuildOutcome,
    storms: Vec<RebuildOutcome>,
}

/// The rebuild-storm scenario experiment.
pub struct ScenarioRebuild {
    /// RAID-5 enclosures in the rack.
    pub enclosures: usize,
    /// Sync epochs to run (1 s each).
    pub epochs: u64,
    /// Epoch boundary the member failure fires at.
    pub fail_epoch: u64,
    /// Foreground offered load, requests/s fleet-wide.
    pub rate: f64,
    /// Rebuild rates swept, sectors/s.
    pub rebuild_rates: Vec<f64>,
    /// Serial-stream airflow capacity, W/K. Sized per scale so the
    /// unfailed baseline idles below the thermal envelope and any
    /// over-envelope time is attributable to the storm.
    pub stream_w_per_k: f64,
    /// Arrival-stream seed.
    pub seed: u64,
    /// Epoch-loop shards. Results are byte-identical at any value, so
    /// this is not part of the config digest.
    pub threads: usize,
}

impl ScenarioRebuild {
    /// Paper-shaped defaults at the given scale.
    pub fn at_scale(scale: Scale) -> Self {
        match scale {
            // Rebuild rates sit below the array's service capacity: one
            // member sustains ~284k sectors/s sequentially, degraded
            // scans amplify 1.5x across 3 survivors, and seek
            // interference with the random foreground stream cuts the
            // sustainable logical scan rate to ~300k sectors/s. The
            // fastest sweep point repairs the 222M-sector volume inside
            // the horizon; open-loop rates beyond capacity just pile up
            // queue and starve the foreground stats of completions.
            Scale::Full => ScenarioRebuild {
                enclosures: 16,
                epochs: 800,
                fail_epoch: 6,
                rate: 800.0,
                rebuild_rates: vec![100_000.0, 200_000.0, 300_000.0],
                stream_w_per_k: 26.0,
                seed: 53,
                threads: disksim::par::default_parallelism(),
            },
            Scale::Quick => ScenarioRebuild {
                enclosures: 6,
                epochs: 12,
                fail_epoch: 2,
                rate: 300.0,
                rebuild_rates: vec![100_000.0, 300_000.0],
                stream_w_per_k: 12.0,
                seed: 53,
                threads: disksim::par::default_parallelism(),
            },
        }
    }

    fn spec(&self) -> DiskSpec {
        DiskSpec::era(2002, 1, Rpm::new(15_020.0))
    }

    fn fleet(&self) -> Result<Fleet, LabError> {
        let fail =
            |e: &dyn std::fmt::Display| LabError::Experiment(format!("scenario_rebuild: {e}"));
        let mut config = FleetConfig::serial(
            self.enclosures,
            self.spec(),
            DriveThermalSpec::new(Inches::new(2.6), 1),
            self.stream_w_per_k,
        )
        .map_err(|e| fail(&e))?;
        config.array = Some(EnclosureArray {
            disks: ARRAY_DISKS,
            stripe_sectors: STRIPE_SECTORS,
        });
        // Round-robin, not thermal-aware: the degraded enclosure sits in
        // the hot half of the serial stream, so a thermal-aware router
        // would starve it of foreground I/O and hide exactly the
        // degraded-read cost this experiment sweeps.
        config.routing = RoutingPolicy::RoundRobin;
        config.threads = self.threads;
        Fleet::new(config).map_err(|e| fail(&e))
    }

    fn run_one(
        &self,
        scenario: Scenario,
        rate: f64,
    ) -> Result<(Vec<EpochSample>, RebuildOutcome), LabError> {
        let mut fleet = self.fleet()?;
        let mut source = scenario_support::read_mostly_source(&self.spec(), self.rate, self.seed)?;
        let (samples, report) = scenario_support::drive(&mut fleet, &mut source, scenario, self.epochs)?;
        let repaired_at = samples
            .iter()
            .find(|s| s.rebuild_total > 0 && s.rebuild_done == s.rebuild_total)
            .map(|s| s.epoch);
        let last = samples.last().expect("at least one epoch ran");
        let rebuilt_fraction = if last.rebuild_total > 0 {
            last.rebuild_done as f64 / last.rebuild_total as f64
        } else {
            0.0
        };
        let outcome = RebuildOutcome {
            rebuild_rate_sectors_per_sec: rate,
            repaired_at_epoch: repaired_at,
            rebuilt_fraction,
            completed: report.stats.count(),
            mean_response_ms: report.stats.mean().to_millis(),
            p95_response_ms: report.stats.percentile(0.95).to_millis(),
            peak_air_c: report.max_air.get(),
            time_over_envelope_s: report.time_over_envelope.get(),
        };
        Ok((samples, outcome))
    }
}

impl Experiment for ScenarioRebuild {
    fn name(&self) -> &'static str {
        "scenario_rebuild"
    }

    fn config(&self) -> Value {
        config_object(vec![
            ("enclosures", self.enclosures.to_value()),
            ("epochs", self.epochs.to_value()),
            ("fail_epoch", self.fail_epoch.to_value()),
            ("rate", self.rate.to_value()),
            ("rebuild_rates", self.rebuild_rates.to_value()),
            ("stream_w_per_k", self.stream_w_per_k.to_value()),
            ("seed", self.seed.to_value()),
            ("array_disks", ARRAY_DISKS.to_value()),
            ("stripe_sectors", STRIPE_SECTORS.to_value()),
            ("chunk_sectors", CHUNK_SECTORS.to_value()),
        ])
    }

    fn run(&self) -> Result<RunOutput, LabError> {
        let (_, baseline) = self.run_one(Scenario::new(), 0.0)?;

        let mut storms = Vec::new();
        let mut storm_csv = String::new();
        for &rebuild_rate in &self.rebuild_rates {
            let scenario = Scenario::new().with(Injection::DriveFailure {
                at_epoch: self.fail_epoch,
                enclosure: self.enclosures / 2,
                disk: 1,
                rebuild: RebuildSpec {
                    rate_sectors_per_sec: rebuild_rate,
                    chunk_sectors: CHUNK_SECTORS,
                },
            });
            let (samples, outcome) = self.run_one(scenario, rebuild_rate)?;
            storm_csv = scenario_support::csv_of(&samples);
            storms.push(outcome);
        }

        let mut report = String::new();
        outln!(
            report,
            "{} RAID-5 enclosures ({} disks, {}-sector stripes), read-heavy load at {:.0} req/s; \
             member fails at epoch {} of {}",
            self.enclosures,
            ARRAY_DISKS,
            STRIPE_SECTORS,
            self.rate,
            self.fail_epoch,
            self.epochs
        );
        outln!(report, "{}", rule(92));
        outln!(
            report,
            "{:>14} {:>12} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "rebuild sect/s",
            "repaired@",
            "rebuilt",
            "mean ms",
            "p95 ms",
            "peak C",
            "over-env s"
        );
        outln!(report, "{}", rule(92));
        let row = |r: &mut String, label: String, o: &RebuildOutcome| {
            outln!(
                r,
                "{:>14} {:>12} {:>9.1}% {:>10.3} {:>10.3} {:>10.2} {:>10.1}",
                label,
                o.repaired_at_epoch
                    .map_or("-".to_string(), |e| format!("epoch {e}")),
                o.rebuilt_fraction * 100.0,
                o.mean_response_ms,
                o.p95_response_ms,
                o.peak_air_c,
                o.time_over_envelope_s
            );
        };
        row(&mut report, "none".to_string(), &baseline);
        for o in &storms {
            row(
                &mut report,
                format!("{:.0}", o.rebuild_rate_sectors_per_sec),
                o,
            );
        }
        outln!(report, "{}", rule(92));
        if let Some(fast) = storms.last() {
            outln!(
                report,
                "fastest rebuild reaches {:.1}% of the lost member at a {:+.3} ms mean / \
                 {:+.3} ms p95 foreground cost over the unfailed baseline",
                fast.rebuilt_fraction * 100.0,
                fast.mean_response_ms - baseline.mean_response_ms,
                fast.p95_response_ms - baseline.p95_response_ms
            );
        }

        let payload = RebuildPayload { baseline, storms };
        Ok(
            RunOutput::single("scenario_rebuild", payload.to_value(), report)
                .with_file("scenario_rebuild.csv", storm_csv),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rebuild_progresses_and_degrades_foreground_latency() {
        let out = ScenarioRebuild::at_scale(Scale::Quick).run().unwrap();
        let payload = &out.json[0].1;
        let field = |v: &Value, k: &str| v.get(k).cloned().expect("field present");
        let storms = field(payload, "storms");
        let storms = storms.as_array().expect("storm rows");
        assert_eq!(storms.len(), 2);
        let frac = |s: &Value| field(s, "rebuilt_fraction").as_f64().unwrap();
        assert!(frac(&storms[0]) > 0.0, "the rebuild makes progress");
        assert!(
            frac(&storms[1]) > frac(&storms[0]),
            "a faster rebuild rate reconstructs more of the member"
        );
        let baseline_mean = field(&field(payload, "baseline"), "mean_response_ms")
            .as_f64()
            .unwrap();
        let storm_mean = field(&storms[1], "mean_response_ms").as_f64().unwrap();
        assert!(
            storm_mean > baseline_mean,
            "degraded service plus rebuild I/O must cost foreground latency \
             ({storm_mean} vs {baseline_mean})"
        );
        let (_, csv) = &out.files[0];
        assert!(csv.starts_with("epoch,"), "csv has its header");
        assert_eq!(csv.lines().count() as u64, 12 + 1);
    }
}
