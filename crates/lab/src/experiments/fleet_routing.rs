//! Rack-scale routing: thermal-aware placement vs round-robin.
//!
//! Extends the paper's §4.2.2 airflow observation — drives sharing an
//! air stream preheat each other — to a request-placement policy. A
//! serial rack of eight drives runs each of the five §5.1 workload
//! presets at one fleet-wide offered load, once with round-robin
//! placement and once with slack-weighted thermal-aware placement. The
//! router cannot change the total heat much (the work still has to run
//! somewhere), but it can put the duty where the airflow graph gives it
//! the most headroom, pulling the hottest bay's peak down.

use crate::experiments::config_object;
use crate::text::{outln, rule};
use crate::{Experiment, LabError, RunOutput, Scale};
use diskfleet::{Fleet, FleetConfig, FleetReport, RoutingPolicy};
use disksim::{DiskSpec, StorageSystem, SystemConfig};
use diskthermal::{DriveThermalSpec, THERMAL_ENVELOPE};
use serde::Serialize;
use serde_json::Value;
use units::{Inches, Rpm};
use workloads::{presets, read_trace, write_trace, TraceGenerator};

/// Drives in the rack, sharing one serial air stream.
const ENCLOSURES: usize = 8;
/// Airflow stream capacity rate (W/K) between neighbouring bays.
const STREAM_W_PER_K: f64 = 6.0;
/// Fleet-wide offered load every preset is rescaled to, requests/s.
const FLEET_RATE: f64 = 480.0;

#[derive(Serialize)]
struct PolicyOutcome {
    peak_air: f64,
    mean_air: f64,
    peak_local_ambient: f64,
    time_over_envelope_s: f64,
    mean_response_ms: f64,
    p95_response_ms: f64,
}

#[derive(Serialize)]
struct WorkloadOutcome {
    workload: String,
    round_robin: PolicyOutcome,
    thermal_aware: PolicyOutcome,
    /// `round_robin.peak_air - thermal_aware.peak_air`, the headroom the
    /// router buys (positive = thermal-aware runs cooler).
    peak_air_reduction: f64,
}

fn outcome(report: &FleetReport) -> PolicyOutcome {
    PolicyOutcome {
        peak_air: report.max_air.get(),
        mean_air: report.mean_air.get(),
        peak_local_ambient: report.peak_local_ambient.get(),
        time_over_envelope_s: report.time_over_envelope.get(),
        mean_response_ms: report.stats.mean().to_millis(),
        p95_response_ms: report.stats.percentile(0.95).to_millis(),
    }
}

/// The routing-policy comparison experiment.
pub struct FleetRouting {
    /// Requests per workload trace.
    pub requests: usize,
    /// Trace-generator seed.
    pub seed: u64,
}

impl FleetRouting {
    /// Paper-shaped defaults at the given scale.
    pub fn at_scale(scale: Scale) -> Self {
        FleetRouting {
            // Full scale runs ~50 s of simulated time per policy —
            // long enough for the air nodes to respond to placement.
            requests: match scale {
                Scale::Full => 24_000,
                Scale::Quick => 500,
            },
            seed: 23,
        }
    }

    fn run_preset(
        &self,
        name: &str,
        trace: &[disksim::Request],
        routing: RoutingPolicy,
    ) -> Result<FleetReport, LabError> {
        let fail = |e: &dyn std::fmt::Display| LabError::Experiment(format!("{name}: {e}"));
        let mut config = FleetConfig::serial(
            ENCLOSURES,
            DiskSpec::era(2002, 1, Rpm::new(15_020.0)),
            DriveThermalSpec::new(Inches::new(2.6), 1),
            STREAM_W_PER_K,
        )
        .map_err(|e| fail(&e))?;
        config.routing = routing;
        config.threads = disksim::par::default_parallelism();
        let fleet = Fleet::new(config).map_err(|e| fail(&e))?;
        fleet.run(trace.to_vec()).map_err(|e| fail(&e))
    }
}

impl Experiment for FleetRouting {
    fn name(&self) -> &'static str {
        "fleet_routing"
    }

    fn config(&self) -> Value {
        config_object(vec![
            ("requests", self.requests.to_value()),
            ("seed", self.seed.to_value()),
            ("enclosures", ENCLOSURES.to_value()),
            ("stream_w_per_k", STREAM_W_PER_K.to_value()),
            ("fleet_rate", FLEET_RATE.to_value()),
        ])
    }

    fn run(&self) -> Result<RunOutput, LabError> {
        let mut report = String::new();
        let fail = |e: &dyn std::fmt::Display| LabError::Experiment(format!("fleet_routing: {e}"));

        // One drive's capacity bounds the logical LBA space the traces
        // target; the fleet remaps per placement anyway.
        let capacity = StorageSystem::new(SystemConfig::single_disk(DiskSpec::era(
            2002,
            1,
            Rpm::new(15_020.0),
        )))
        .map_err(|e| fail(&e))?
        .logical_sectors();

        outln!(
            report,
            "rack of {ENCLOSURES} drives, serial airflow at {STREAM_W_PER_K} W/K, \
             every workload rescaled to {FLEET_RATE:.0} req/s fleet-wide"
        );
        outln!(report, "{}", rule(108));
        outln!(
            report,
            "{:<14} {:>21} {:>21} {:>10} {:>18} {:>18}",
            "workload",
            "round-robin peak C",
            "thermal-aware peak C",
            "saved C",
            "rr p95 ms",
            "ta p95 ms"
        );
        outln!(report, "{}", rule(108));

        let mut outcomes = Vec::new();
        for preset in presets() {
            let generator = TraceGenerator::new(
                preset.profile.clone(),
                preset.arrivals.with_mean_rate(FLEET_RATE),
                1,
                capacity,
            )
            .map_err(|e| fail(&e))?;
            let trace = generator.generate(self.requests, self.seed);

            // Persist-and-reload through the newline-JSON trace format,
            // so the experiment exercises the same serialization the
            // standalone trace tools use.
            let mut buf = Vec::new();
            write_trace(&mut buf, &trace).map_err(|e| fail(&e))?;
            let trace = read_trace(buf.as_slice()).map_err(|e| fail(&e))?;

            let rr = self.run_preset(preset.name, &trace, RoutingPolicy::RoundRobin)?;
            let ta = self.run_preset(
                preset.name,
                &trace,
                RoutingPolicy::ThermalAware {
                    envelope: THERMAL_ENVELOPE,
                },
            )?;

            let (rr, ta) = (outcome(&rr), outcome(&ta));
            outln!(
                report,
                "{:<14} {:>21.2} {:>21.2} {:>10.2} {:>18.2} {:>18.2}",
                preset.name,
                rr.peak_air,
                ta.peak_air,
                rr.peak_air - ta.peak_air,
                rr.p95_response_ms,
                ta.p95_response_ms
            );
            outcomes.push(WorkloadOutcome {
                workload: preset.name.to_string(),
                peak_air_reduction: rr.peak_air - ta.peak_air,
                round_robin: rr,
                thermal_aware: ta,
            });
        }

        outln!(report, "{}", rule(108));
        let mean_saving = outcomes.iter().map(|o| o.peak_air_reduction).sum::<f64>()
            / outcomes.len() as f64;
        outln!(
            report,
            "slack-weighted placement cools the hottest bay by {mean_saving:.2} C on average \
             at equal offered load"
        );

        Ok(RunOutput::single(
            "fleet_routing",
            outcomes.to_value(),
            report,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thermal_aware_beats_round_robin_for_every_workload() {
        let out = FleetRouting::at_scale(Scale::Quick).run().unwrap();
        let payload = &out.json[0].1;
        let rows = payload.as_array().expect("array payload");
        assert_eq!(rows.len(), 5, "one row per preset");
        for row in rows {
            let saved = row.get("peak_air_reduction").and_then(Value::as_f64).unwrap();
            let name = row.get("workload").and_then(Value::as_str).unwrap();
            assert!(
                saved > 0.0,
                "{name}: thermal-aware must run cooler, saved {saved}"
            );
        }
    }
}
