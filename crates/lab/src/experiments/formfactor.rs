//! §4.2.2: the enclosure form-factor study — a 2.6″ platter moved into a
//! 2.5″-class case loses heat-rejection area and falls off the roadmap
//! immediately; quantifies the extra cooling needed to recover.

use crate::experiments::config_object;
use crate::text::{outln, rule};
use crate::{Experiment, LabError, RunOutput};
use roadmap::{form_factor_study, RoadmapConfig};
use serde::Serialize;
use serde_json::Value;

/// The small-enclosure form-factor study.
#[derive(Default)]
pub struct FormFactor;

impl Experiment for FormFactor {
    fn name(&self) -> &'static str {
        "formfactor"
    }

    fn config(&self) -> Value {
        config_object(vec![("roadmap", "default".to_value())])
    }

    fn run(&self) -> Result<RunOutput, LabError> {
        let mut report = String::new();
        let cfg = RoadmapConfig::default();
        let study = form_factor_study(&cfg);

        outln!(report, "Form-factor study: 2.6\" platter in a 2.5\" enclosure (3.96\" x 2.75\")");
        outln!(report, "{}", rule(70));
        outln!(
            report,
            "{:>5} | {:>10} | {:>14} {:>6}",
            "Year", "Target", "Small-FF IDR", "meets"
        );
        outln!(report, "{}", rule(70));
        for p in &study.small_points {
            outln!(
                report,
                "{:>5} | {:>10.1} | {:>14.1} {:>6}",
                p.year,
                p.idr_target.get(),
                p.max_idr.get(),
                if p.meets_target() { "yes" } else { "NO" }
            );
        }
        outln!(report, "{}", rule(70));
        outln!(
            report,
            "small enclosure falls off at {:?} (paper: already at 2002); 3.5\" baseline at {:?}",
            study.small_falloff, study.baseline_falloff
        );
        outln!(
            report,
            "extra ambient cooling needed to become comparable: {:.0} C (paper: ~15 C)",
            study.cooling_needed
        );

        Ok(RunOutput::single("formfactor", study.to_value(), report))
    }
}
