//! `lab trace <scenario>` — run an instrumented scenario and write its
//! event stream plus derived metrics under `results/`.
//!
//! A trace run produces three files per scenario:
//!
//! - `trace_<name>.ndjson` — the full event stream, one JSON object per
//!   line, stamped with **sim time**. Because every emission site stamps
//!   sim time and all cross-thread merges happen in the serial phases,
//!   the bytes are identical at any `--threads` value (the
//!   `lab_determinism` suite pins this).
//! - `trace_<name>_metrics.json` — a [`diskobs::Registry`] folded from
//!   the stream: per-event-type counters, a response-time histogram, and
//!   peak-temperature gauges.
//! - `trace_<name>_timeseries.csv` — the per-drive snapshot probes
//!   (temperature, queue depth, utilization, duty, RPM, gate state) as a
//!   flat CSV table.

use crate::error::LabError;
use diskfleet::{Fleet, FleetConfig, FleetDtmPolicy, RoutingPolicy};
use diskobs::{Event, LogHistogram, NdjsonRecorder, Recorder, Registry, Sink, TimedEvent, Timeseries};
use disksim::{DiskSpec, Request, RequestKind, StorageSystem, SystemConfig};
use diskthermal::{DriveThermalSpec, TempSensor, ThermalModel, ThermalParams, THERMAL_ENVELOPE};
use dtm::{DtmController, DtmPolicy};
use std::path::{Path, PathBuf};
use units::{Inches, Rpm, Seconds, TempDelta};

/// The registered trace scenarios.
pub fn trace_names() -> &'static [&'static str] {
    &["figure5", "fleet_routing", "scenario_rebuild"]
}

/// What one trace run produced.
#[derive(Debug)]
pub struct TraceOutcome {
    /// Scenario name.
    pub name: String,
    /// Events in the stream.
    pub events: usize,
    /// Files written, in write order.
    pub files: Vec<PathBuf>,
}

/// Runs the named scenario with a recording sink and writes the event
/// stream, metrics registry, and snapshot timeseries into `dir`.
///
/// `threads` shards the fleet scenario's event loop; the emitted bytes
/// are independent of it.
///
/// # Errors
///
/// Fails on an unknown scenario name, a simulation error, or I/O.
pub fn run_trace(name: &str, threads: usize, dir: &Path) -> Result<TraceOutcome, LabError> {
    let mut sink = Sink::buffer();
    match name {
        "figure5" => trace_figure5(&mut sink)?,
        "fleet_routing" => trace_fleet_routing(threads, &mut sink)?,
        "scenario_rebuild" => trace_scenario_rebuild(threads, &mut sink)?,
        other => {
            return Err(LabError::Experiment(format!(
                "unknown trace scenario {other:?} (have: {})",
                trace_names().join(", ")
            )))
        }
    }
    let events = sink.drain();
    write_outputs(name, &events, dir)
}

/// The figure5 companion scenario: the 2.6" drive the paper ramps from
/// 15,020 to 26,750 RPM, run closed-loop under the slack-ramp policy
/// with a SMART-style sensor, so the trace shows boost/unboost actions,
/// RPM transitions, and sensor quantization side by side.
fn trace_figure5(sink: &mut Sink) -> Result<(), LabError> {
    let fail = |e: &dyn std::fmt::Display| LabError::Experiment(format!("trace figure5: {e}"));
    let spec = DiskSpec::era(2002, 1, Rpm::new(15_020.0));
    let system = StorageSystem::new(SystemConfig::single_disk(spec)).map_err(|e| fail(&e))?;
    let capacity = system.logical_sectors();
    let model = ThermalModel::with_params(
        DriveThermalSpec::new(Inches::new(2.6), 1),
        ThermalParams::default(),
    );
    let controller = DtmController::new(
        system,
        model,
        DtmPolicy::SlackRamp {
            base: Rpm::new(15_020.0),
            high: Rpm::new(26_750.0),
            slack_margin: TempDelta::new(0.5),
        },
        THERMAL_ENVELOPE,
    )
    .with_sensor(TempSensor::smart_style());
    controller
        .run_with_sink(synthetic_trace(1_500, 120.0, capacity), sink)
        .map_err(|e| fail(&e))?;
    Ok(())
}

/// The fleet_routing companion scenario: a six-bay serial rack under
/// thermal-aware placement and coordinator speed scaling — routing
/// decisions, per-bay snapshots, and coordinator actions in one stream.
fn trace_fleet_routing(threads: usize, sink: &mut Sink) -> Result<(), LabError> {
    let fail =
        |e: &dyn std::fmt::Display| LabError::Experiment(format!("trace fleet_routing: {e}"));
    let mut config = FleetConfig::serial(
        6,
        DiskSpec::era(2002, 1, Rpm::new(15_020.0)),
        DriveThermalSpec::new(Inches::new(2.6), 1),
        10.0,
    )
    .map_err(|e| fail(&e))?;
    config.routing = RoutingPolicy::ThermalAware {
        envelope: THERMAL_ENVELOPE,
    };
    // Guard wide enough that the hottest bays cross the trip point
    // under this load, so the trace carries coordinator downshifts and
    // the RPM transitions they cause, not just routing and snapshots.
    config.dtm = FleetDtmPolicy::SpeedScale {
        high: Rpm::new(15_020.0),
        low: Rpm::new(12_000.0),
        guard: TempDelta::new(1.6),
        resume_margin: TempDelta::new(0.4),
    };
    config.threads = threads;
    let fleet = Fleet::new(config).map_err(|e| fail(&e))?;
    fleet
        .run_with_sink(synthetic_trace(3_000, 350.0, u64::MAX), sink)
        .map_err(|e| fail(&e))?;
    Ok(())
}

/// A rebuild storm through the scenario engine: a RAID-5 member fails
/// at an epoch boundary mid-run, so the stream carries the scenario
/// vocabulary — `drive_failed`, per-epoch `rebuild_progress` — next to
/// the routing, snapshot, and completion events of the fleet loop.
fn trace_scenario_rebuild(threads: usize, sink: &mut Sink) -> Result<(), LabError> {
    use diskfleet::{EnclosureArray, RebuildSpec};
    use diskscenario::{ArrivalSource, Injection, Scenario, ScenarioEngine};

    let fail =
        |e: &dyn std::fmt::Display| LabError::Experiment(format!("trace scenario_rebuild: {e}"));
    let mut config = FleetConfig::serial(
        4,
        DiskSpec::era(2002, 1, Rpm::new(15_020.0)),
        DriveThermalSpec::new(Inches::new(2.6), 1),
        10.0,
    )
    .map_err(|e| fail(&e))?;
    config.array = Some(EnclosureArray {
        disks: 4,
        stripe_sectors: 65_536,
    });
    config.routing = RoutingPolicy::ThermalAware {
        envelope: THERMAL_ENVELOPE,
    };
    config.threads = threads;
    let mut fleet = Fleet::new(config).map_err(|e| fail(&e))?;
    let capacity = StorageSystem::new(SystemConfig::single_disk(DiskSpec::era(
        2002,
        1,
        Rpm::new(15_020.0),
    )))
    .map_err(|e| fail(&e))?
    .logical_sectors();
    let mut source = ArrivalSource::replay(synthetic_trace(1_200, 200.0, capacity))
        .map_err(|e| fail(&LabError::Experiment(e)))?;
    let mut engine = ScenarioEngine::new(Scenario::new().with(Injection::DriveFailure {
        at_epoch: 2,
        enclosure: 1,
        disk: 1,
        rebuild: RebuildSpec {
            rate_sectors_per_sec: 4_000_000.0,
            chunk_sectors: 16_384,
        },
    }));
    let mut samples = Vec::new();
    diskscenario::run_scenario(&mut fleet, &mut source, &mut engine, 6, sink, &mut samples)
        .map_err(|e| fail(&e))?;
    Ok(())
}

/// A deterministic seek-heavy request stream (no RNG: arithmetic
/// striding only, so the scenario needs no seed plumbing).
fn synthetic_trace(n: u64, rate: f64, capacity: u64) -> Vec<Request> {
    (0..n)
        .map(|i| {
            let span = capacity.saturating_sub(64).max(1);
            Request::new(
                i,
                Seconds::new(i as f64 / rate),
                0,
                i.wrapping_mul(7_777_777) % span,
                8,
                if i % 3 == 0 { RequestKind::Write } else { RequestKind::Read },
            )
        })
        .collect()
}

/// Folds an event stream into the metrics registry `lab trace` exports.
pub fn registry_from(events: &[TimedEvent]) -> Registry {
    let mut reg = Registry::new();
    for e in events {
        match &e.event {
            Event::RequestIssue { .. } => reg.count("request_issue", 1),
            Event::RequestComplete { response_ms, .. } => {
                reg.count("request_complete", 1);
                reg.observe("response_ms", *response_ms, LogHistogram::response_ms);
            }
            Event::RpmTransition { .. } => reg.count("rpm_transition", 1),
            Event::ThrottleEngage { .. } => reg.count("throttle_engage", 1),
            Event::ThrottleDisengage { .. } => reg.count("throttle_disengage", 1),
            Event::CoordinatorAction { .. } => reg.count("coordinator_action", 1),
            Event::RoutingDecision { .. } => reg.count("routing_decision", 1),
            Event::SensorReading {
                sensed_c, actual_c, ..
            } => {
                reg.count("sensor_reading", 1);
                reg.observe("sensor_error_c", (actual_c - sensed_c).abs(), || {
                    // 1/16 C first edge: fine enough to resolve a 1 C
                    // quantizing sensor's error distribution.
                    LogHistogram::new(0.0625, 2.0, 8)
                });
            }
            Event::Snapshot { air_c, queue, .. } => {
                reg.count("snapshot", 1);
                let peak = reg.gauge("peak_air_c").unwrap_or(f64::NEG_INFINITY);
                reg.gauge_set("peak_air_c", peak.max(*air_c));
                reg.observe("queue_depth", *queue as f64, || {
                    LogHistogram::new(1.0, 2.0, 10)
                });
            }
            Event::DriveFailed { .. } => reg.count("drive_failed", 1),
            Event::RebuildProgress { .. } => reg.count("rebuild_progress", 1),
            Event::CoolingExcursion { .. } => reg.count("cooling_excursion", 1),
            Event::TrafficPhase { .. } => reg.count("traffic_phase", 1),
            Event::Log { .. } => reg.count("log", 1),
        }
    }
    reg.gauge_set("events", events.len() as f64);
    reg.gauge_set("trace_span_s", events.last().map(|e| e.t).unwrap_or(0.0));
    reg
}

/// Extracts the snapshot probes into the CSV timeseries.
pub fn timeseries_from(events: &[TimedEvent]) -> Timeseries {
    let mut ts = Timeseries::new(&[
        "t", "drive", "air_c", "ambient_c", "queue", "util", "duty", "rpm", "gated",
    ]);
    for e in events {
        if let Event::Snapshot {
            drive,
            air_c,
            ambient_c,
            queue,
            util,
            duty,
            rpm,
            gated,
        } = &e.event
        {
            ts.push(vec![
                e.t,
                *drive as f64,
                *air_c,
                *ambient_c,
                *queue as f64,
                *util,
                *duty,
                *rpm,
                f64::from(u8::from(*gated)),
            ]);
        }
    }
    ts
}

/// Writes the three per-scenario files and returns the outcome.
fn write_outputs(name: &str, events: &[TimedEvent], dir: &Path) -> Result<TraceOutcome, LabError> {
    std::fs::create_dir_all(dir)?;
    let mut files = Vec::new();

    let ndjson = dir.join(format!("trace_{name}.ndjson"));
    let mut recorder = NdjsonRecorder::create_atomic(&ndjson)?;
    for e in events {
        recorder.record(e);
    }
    recorder.commit()?;
    files.push(ndjson);

    let metrics = dir.join(format!("trace_{name}_metrics.json"));
    std::fs::write(&metrics, registry_from(events).to_json_pretty() + "\n")?;
    files.push(metrics);

    let csv = dir.join(format!("trace_{name}_timeseries.csv"));
    std::fs::write(&csv, timeseries_from(events).to_csv())?;
    files.push(csv);

    for f in &files {
        diskobs::logger::info(&format!("wrote {}", f.display()));
    }
    Ok(TraceOutcome {
        name: name.to_string(),
        events: events.len(),
        files,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("disklab-trace-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn unknown_scenario_is_rejected() {
        let dir = scratch("unknown");
        let err = run_trace("figure99", 1, &dir).unwrap_err();
        assert!(err.to_string().contains("figure99"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn figure5_trace_writes_all_three_files() {
        let dir = scratch("fig5");
        let outcome = run_trace("figure5", 1, &dir).unwrap();
        assert_eq!(outcome.files.len(), 3);
        assert!(outcome.events > 0);
        for f in &outcome.files {
            assert!(f.is_file(), "{} missing", f.display());
        }
        // The stream carries both request completions and RPM activity.
        let text = std::fs::read_to_string(&outcome.files[0]).unwrap();
        assert!(text.contains("RequestComplete"));
        assert!(text.contains("RpmTransition"));
        assert!(text.contains("SensorReading"));
        let metrics = std::fs::read_to_string(&outcome.files[1]).unwrap();
        assert!(metrics.contains("response_ms"));
        let csv = std::fs::read_to_string(&outcome.files[2]).unwrap();
        assert!(csv.starts_with("t,drive,air_c"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fleet_trace_contains_routing_and_snapshots() {
        let dir = scratch("fleet");
        let outcome = run_trace("fleet_routing", 2, &dir).unwrap();
        let text = std::fs::read_to_string(&outcome.files[0]).unwrap();
        assert!(text.contains("RoutingDecision"));
        assert!(text.contains("Snapshot"));
        // Timestamps are non-decreasing: the stream is a real timeline.
        let mut prev = f64::NEG_INFINITY;
        for line in text.lines() {
            let v: serde_json::Value = serde_json::from_str(line).unwrap();
            let t = v.get("t").and_then(serde_json::Value::as_f64).unwrap();
            assert!(t >= prev, "timestamps regressed: {t} after {prev}");
            prev = t;
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
