//! `lab twin` — the CLI front end for the digital-twin what-if server.
//!
//! `lab twin serve` boots a [`disktwin::TwinServer`] and prints the
//! bound address (scripts read the ephemeral port from that line);
//! `lab twin query` sends one JSON request line and prints the answer.

use disktwin::{query_line, ServerConfig, Twin, TwinConfig, TwinServer};
use std::io::Write;
use std::time::Duration;

/// One-line usage for `lab twin` errors.
const TWIN_USAGE: &str = "usage: lab twin serve [--addr A] [--enclosures N] [--workload W] \
     [--checkpoint PATH] [--epoch-ms N] [--max-inflight N] | \
     lab twin query --addr HOST:PORT '<json>'";

/// Runs the `twin` subcommand. Returns a process exit code; every
/// failure is one line on stderr.
pub fn run_twin(args: &[String]) -> i32 {
    match args.first().map(String::as_str) {
        Some("serve") => match serve(&args[1..]) {
            Ok(()) => 0,
            Err(e) => {
                eprintln!("lab twin serve: {e}");
                2
            }
        },
        Some("query") => match query(&args[1..]) {
            Ok(answer) => {
                println!("{answer}");
                // Typed server-side errors still print, but scripts see
                // a nonzero exit.
                if answer.starts_with("{\"error\"") {
                    1
                } else {
                    0
                }
            }
            Err(e) => {
                eprintln!("lab twin query: {e}");
                2
            }
        },
        Some(other) => {
            eprintln!("lab twin: unknown action {other:?} ({TWIN_USAGE})");
            2
        }
        None => {
            eprintln!("lab twin: missing action ({TWIN_USAGE})");
            2
        }
    }
}

/// Resolves a workload preset by its short CLI name.
fn workload_by_key(key: &str) -> Result<workloads::WorkloadPreset, String> {
    match key.to_ascii_lowercase().as_str() {
        "openmail" => Ok(workloads::openmail()),
        "oltp" => Ok(workloads::oltp()),
        "search" | "search_engine" => Ok(workloads::search_engine()),
        "tpcc" => Ok(workloads::tpcc()),
        "tpch" => Ok(workloads::tpch()),
        other => Err(format!(
            "unknown workload {other:?} (have: openmail, oltp, search, tpcc, tpch)"
        )),
    }
}

fn parse_flag<T: std::str::FromStr>(flag: &str, value: Option<&String>) -> Result<T, String> {
    let v = value.ok_or_else(|| format!("{flag} needs a value"))?;
    v.parse().map_err(|_| format!("bad {flag} value {v:?}"))
}

fn serve(args: &[String]) -> Result<(), String> {
    let mut cfg = ServerConfig::default();
    let mut enclosures = 4usize;
    let mut workload = workloads::oltp();
    let mut seed = 42u64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => cfg.addr = parse_flag(arg, it.next())?,
            "--enclosures" => enclosures = parse_flag(arg, it.next())?,
            "--workload" => workload = workload_by_key(&parse_flag::<String>(arg, it.next())?)?,
            "--seed" => seed = parse_flag(arg, it.next())?,
            "--checkpoint" => {
                cfg.checkpoint_path = Some(parse_flag::<String>(arg, it.next())?.into());
            }
            "--epoch-ms" => cfg.epoch_interval_ms = parse_flag(arg, it.next())?,
            "--max-inflight" => cfg.max_inflight = parse_flag(arg, it.next())?,
            "--history" => cfg.snapshot_history = parse_flag(arg, it.next())?,
            other => return Err(format!("unknown flag {other:?} ({TWIN_USAGE})")),
        }
    }
    let mut twin_cfg = TwinConfig::preset(workload, enclosures);
    twin_cfg.seed = seed;
    let twin = Twin::new(twin_cfg).map_err(|e| e.to_string())?;
    let server = TwinServer::start(twin, cfg).map_err(|e| e.to_string())?;
    // Scripts parse this line for the ephemeral port; flush so it is
    // visible before the server blocks.
    println!("twin listening on {}", server.addr());
    std::io::stdout().flush().ok();
    server.join();
    Ok(())
}

fn query(args: &[String]) -> Result<String, String> {
    let mut addr: Option<String> = None;
    let mut timeout_ms = 120_000u64;
    let mut line: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr = Some(parse_flag(arg, it.next())?),
            "--timeout-ms" => timeout_ms = parse_flag(arg, it.next())?,
            other if !other.starts_with('-') => {
                if line.replace(other.to_string()).is_some() {
                    return Err("exactly one JSON request line expected".into());
                }
            }
            other => return Err(format!("unknown flag {other:?} ({TWIN_USAGE})")),
        }
    }
    let addr = addr.ok_or("--addr HOST:PORT is required")?;
    let line = line.ok_or("a JSON request line is required")?;
    query_line(&addr, &line, Duration::from_millis(timeout_ms)).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_actions_and_missing_args_fail_with_code_2() {
        assert_eq!(run_twin(&["frobnicate".to_string()]), 2);
        assert_eq!(run_twin(&[]), 2);
        assert_eq!(
            run_twin(&["query".to_string(), "{\"cmd\":\"status\"}".to_string()]),
            2,
            "query without --addr must fail cleanly"
        );
    }

    #[test]
    fn workload_keys_resolve() {
        for key in ["openmail", "oltp", "search", "tpcc", "tpch", "OLTP"] {
            assert!(workload_by_key(key).is_ok(), "{key} must resolve");
        }
        assert!(workload_by_key("factorio").is_err());
    }

    #[test]
    fn serve_and_query_round_trip_in_process() {
        // Boot a real server through the same path `serve` uses, then
        // drive it with the query action.
        let twin = Twin::new(TwinConfig::preset(workloads::oltp(), 2)).unwrap();
        let server = TwinServer::start(
            twin,
            ServerConfig {
                epoch_interval_ms: 1,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let addr = server.addr().to_string();
        let args = vec![
            "--addr".to_string(),
            addr,
            r#"{"cmd":"status"}"#.to_string(),
        ];
        let answer = query(&args).unwrap();
        assert!(answer.contains("\"enclosures\":2"), "{answer}");
        server.stop();
    }
}
