//! `lab bench` — a timed baseline for the thermal kernel and the
//! experiments that lean on it.
//!
//! Measures, in order:
//!
//! - backward-Euler steps/sec through the pre-rewrite kernel (heap
//!   `Vec<Vec<f64>>` matrices, one-shot Gaussian elimination every
//!   step), reproduced verbatim by `diskthermal::bench_support`;
//! - backward-Euler steps/sec with the cached step factorization
//!   disabled (stack arrays, but still assemble + factor + solve every
//!   step);
//! - backward-Euler steps/sec with the cache on (the default path:
//!   factor once per operating point, back-substitute per step);
//! - forward-Euler steps/sec (no linear solve at all);
//! - steady-state solves/sec cold (every solve a distinct operating
//!   point, defeating the memo) and memoized (the same operating point
//!   over and over, the envelope-bisection access pattern);
//! - end-to-end wall time of the `figure5` and `figure7` experiments;
//! - drive-windows/sec through the fleet's sharded epoch loop at one
//!   shard and at the machine's parallelism, plus the end-to-end
//!   `fleet_routing` experiment.
//!
//! A full run writes the numbers to `BENCH_thermal.json` and
//! `BENCH_fleet.json` at the workspace root so regressions have
//! checked-in baselines to diff against; `--quick` shrinks the
//! iteration counts and skips the writes.

use crate::registry;
use crate::text::results_dir;
use crate::{LabError, Scale};
use diskfleet::{Fleet, FleetConfig};
use disksim::{DiskSpec, Request, RequestKind};
use diskthermal::{
    DriveThermalSpec, Integrator, OperatingPoint, ThermalModel, TransientSim,
};
use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;
use units::{Inches, Rpm, Seconds};

/// Step size shared by every integrator benchmark; small enough that
/// forward Euler is stable for the air node's tiny heat capacity.
const DT: f64 = 0.1;

/// Everything one `lab bench` run measured.
#[derive(Debug, Serialize)]
pub struct BenchReport {
    /// True when the quick (smoke-test) iteration counts were used.
    pub quick: bool,
    /// Backward-Euler steps/sec through the pre-rewrite heap kernel.
    pub be_prepr_steps_per_sec: f64,
    /// Backward-Euler steps/sec on stack arrays, factoring every step.
    pub be_naive_steps_per_sec: f64,
    /// Backward-Euler steps/sec with the cached factorization.
    pub be_cached_steps_per_sec: f64,
    /// `be_cached / be_prepr` — the whole PR's payoff on the kernel.
    pub cached_speedup: f64,
    /// Forward-Euler steps/sec.
    pub fe_steps_per_sec: f64,
    /// Steady-state solves/sec when every solve is a new operating point.
    pub steady_cold_solves_per_sec: f64,
    /// Steady-state solves/sec when the memo absorbs repeat solves.
    pub steady_memoized_solves_per_sec: f64,
    /// End-to-end wall time of the `figure5` experiment, in ms.
    pub figure5_wall_ms: f64,
    /// End-to-end wall time of the `figure7` experiment, in ms.
    pub figure7_wall_ms: f64,
}

/// Times `steps` backward-Euler steps through the pre-rewrite kernel:
/// heap matrices assembled and eliminated from scratch on every step.
fn be_prepr_steps_per_sec(model: &ThermalModel, op: OperatingPoint, steps: usize) -> f64 {
    let ambient = model.spec().ambient().get();
    let mut temps = [ambient; 4];
    let start = Instant::now();
    for _ in 0..steps {
        temps = diskthermal::bench_support::heap_backward_euler_step(model, op, DT, temps);
    }
    let elapsed = start.elapsed().as_secs_f64();
    black_box(temps);
    steps as f64 / elapsed
}

/// Times `steps` backward-Euler steps over a constant operating point.
fn be_steps_per_sec(model: &ThermalModel, op: OperatingPoint, steps: usize, cached: bool) -> f64 {
    let mut sim = TransientSim::from_ambient(model)
        .with_step(Seconds::new(DT))
        .expect("constant step is positive")
        .with_step_cache(cached);
    let start = Instant::now();
    sim.advance(model, op, Seconds::new(steps as f64 * DT));
    let elapsed = start.elapsed().as_secs_f64();
    black_box(sim.temps());
    steps as f64 / elapsed
}

/// Times `steps` forward-Euler steps over a constant operating point.
fn fe_steps_per_sec(model: &ThermalModel, op: OperatingPoint, steps: usize) -> f64 {
    let mut sim = TransientSim::from_ambient(model)
        .with_step(Seconds::new(DT))
        .expect("constant step is positive")
        .with_integrator(Integrator::ForwardEuler);
    let start = Instant::now();
    sim.advance(model, op, Seconds::new(steps as f64 * DT));
    let elapsed = start.elapsed().as_secs_f64();
    black_box(sim.temps());
    steps as f64 / elapsed
}

/// Times `n` steady-state solves. With `distinct_ops` every solve uses a
/// slightly different spindle speed (all cache misses); without, the
/// same operating point repeats (all hits after the first).
fn steady_solves_per_sec(model: &ThermalModel, n: usize, distinct_ops: bool) -> f64 {
    let start = Instant::now();
    for i in 0..n {
        let rpm = if distinct_ops {
            10_000.0 + i as f64 * 0.01
        } else {
            15_000.0
        };
        black_box(model.steady_state(OperatingPoint::seeking(Rpm::new(rpm))));
    }
    let elapsed = start.elapsed().as_secs_f64();
    n as f64 / elapsed
}

/// Times one full in-process run of a registered experiment, in ms.
fn experiment_wall_ms(name: &str) -> Result<f64, LabError> {
    experiment_wall_ms_at(name, Scale::Full)
}

/// Like [`experiment_wall_ms`] at a caller-chosen scale.
fn experiment_wall_ms_at(name: &str, scale: Scale) -> Result<f64, LabError> {
    let exp = registry::by_name(name, scale)
        .ok_or_else(|| LabError::Experiment(format!("unknown experiment {name:?}")))?;
    let start = Instant::now();
    black_box(exp.run()?);
    Ok(start.elapsed().as_secs_f64() * 1e3)
}

/// Drives in the fleet-kernel benchmark rack.
const FLEET_BENCH_ENCLOSURES: usize = 8;
/// Control windows per sync epoch (the `FleetConfig::serial` default).
const FLEET_BENCH_WINDOWS_PER_EPOCH: usize = 4;

/// What `lab bench` measured about the fleet event loop. A full run
/// writes this to `BENCH_fleet.json` at the workspace root.
#[derive(Debug, Serialize)]
pub struct FleetBenchReport {
    /// True when the quick (smoke-test) request counts were used.
    pub quick: bool,
    /// Shard count of the sharded measurement.
    pub shards: usize,
    /// Drive-windows/sec through the epoch loop on one shard.
    pub serial_windows_per_sec: f64,
    /// Drive-windows/sec with the sharded (work-stealing) loop.
    pub sharded_windows_per_sec: f64,
    /// `sharded / serial` — the payoff of sharding the event loop.
    pub shard_speedup: f64,
    /// End-to-end wall time of the `fleet_routing` experiment, in ms
    /// (quick scale under `--quick`, full scale otherwise).
    pub fleet_routing_wall_ms: f64,
}

/// A deterministic synthetic fleet trace: fixed-rate arrivals striding
/// the address space.
fn fleet_bench_trace(requests: u64, rate: f64) -> Vec<Request> {
    (0..requests)
        .map(|i| {
            Request::new(
                i,
                Seconds::new(i as f64 / rate),
                0,
                i.wrapping_mul(7_777_777),
                8,
                if i % 4 == 0 { RequestKind::Write } else { RequestKind::Read },
            )
        })
        .collect()
}

/// Times one fleet run, returning drive-windows advanced per second.
fn fleet_windows_per_sec(threads: usize, requests: u64) -> Result<f64, LabError> {
    let fail = |e: &dyn std::fmt::Display| LabError::Experiment(format!("fleet bench: {e}"));
    let mut config = FleetConfig::serial(
        FLEET_BENCH_ENCLOSURES,
        DiskSpec::era(2002, 1, Rpm::new(15_020.0)),
        DriveThermalSpec::new(Inches::new(2.6), 1),
        12.0,
    )
    .map_err(|e| fail(&e))?;
    config.threads = threads;
    let fleet = Fleet::new(config).map_err(|e| fail(&e))?;
    let trace = fleet_bench_trace(requests, 400.0);
    let start = Instant::now();
    let report = fleet.run(trace).map_err(|e| fail(&e))?;
    let elapsed = start.elapsed().as_secs_f64();
    let windows =
        report.epochs * (FLEET_BENCH_WINDOWS_PER_EPOCH * FLEET_BENCH_ENCLOSURES) as u64;
    Ok(windows as f64 / elapsed)
}

/// Benchmarks the fleet event loop at one shard and at the machine's
/// parallelism, plus the end-to-end `fleet_routing` experiment.
pub fn fleet_bench(quick: bool) -> Result<FleetBenchReport, LabError> {
    let requests = if quick { 800 } else { 6_000 };
    let shards = disksim::par::default_parallelism();
    let serial = fleet_windows_per_sec(1, requests)?;
    let sharded = fleet_windows_per_sec(shards, requests)?;
    let scale = if quick { Scale::Quick } else { Scale::Full };
    let routing_ms = experiment_wall_ms_at("fleet_routing", scale)?;
    Ok(FleetBenchReport {
        quick,
        shards,
        serial_windows_per_sec: serial,
        sharded_windows_per_sec: sharded,
        shard_speedup: sharded / serial,
        fleet_routing_wall_ms: routing_ms,
    })
}

/// Runs the benchmark suite. Quick mode shrinks the iteration counts to
/// smoke-test territory and does not write `BENCH_thermal.json`.
pub fn run_bench(quick: bool) -> Result<BenchReport, LabError> {
    let (kernel_steps, cold_solves, memo_solves) = if quick {
        (20_000, 2_000, 20_000)
    } else {
        (200_000, 20_000, 200_000)
    };

    let model = ThermalModel::new(DriveThermalSpec::cheetah_15k3());
    let op = OperatingPoint::seeking(Rpm::new(15_000.0));

    eprintln!(
        "lab bench ({} mode): {} integrator steps, {} cold + {} memoized steady solves",
        if quick { "quick" } else { "full" },
        kernel_steps,
        cold_solves,
        memo_solves
    );

    let be_prepr = be_prepr_steps_per_sec(&model, op, kernel_steps);
    let be_naive = be_steps_per_sec(&model, op, kernel_steps, false);
    let be_cached = be_steps_per_sec(&model, op, kernel_steps, true);
    let fe = fe_steps_per_sec(&model, op, kernel_steps);
    let steady_cold = steady_solves_per_sec(&model, cold_solves, true);
    let steady_memo = steady_solves_per_sec(&model, memo_solves, false);
    let figure5_ms = experiment_wall_ms("figure5")?;
    let figure7_ms = experiment_wall_ms("figure7")?;

    let report = BenchReport {
        quick,
        be_prepr_steps_per_sec: be_prepr,
        be_naive_steps_per_sec: be_naive,
        be_cached_steps_per_sec: be_cached,
        cached_speedup: be_cached / be_prepr,
        fe_steps_per_sec: fe,
        steady_cold_solves_per_sec: steady_cold,
        steady_memoized_solves_per_sec: steady_memo,
        figure5_wall_ms: figure5_ms,
        figure7_wall_ms: figure7_ms,
    };

    println!("thermal kernel (dt = {DT} s, constant operating point):");
    println!(
        "  backward Euler, pre-rewrite (heap + eliminate): {:>12.0} steps/s",
        report.be_prepr_steps_per_sec
    );
    println!(
        "  backward Euler, stack arrays, factor per step:  {:>12.0} steps/s",
        report.be_naive_steps_per_sec
    );
    println!(
        "  backward Euler, cached factorization:           {:>12.0} steps/s  ({:.1}x vs pre-rewrite)",
        report.be_cached_steps_per_sec, report.cached_speedup
    );
    println!(
        "  forward Euler:                                  {:>12.0} steps/s",
        report.fe_steps_per_sec
    );
    println!("steady-state solves:");
    println!(
        "  cold (distinct operating points):          {:>12.0} solves/s",
        report.steady_cold_solves_per_sec
    );
    println!(
        "  memoized (repeated operating point):       {:>12.0} solves/s",
        report.steady_memoized_solves_per_sec
    );
    println!("end-to-end experiments (single-threaded, no cache):");
    println!("  figure5: {:>8.1} ms", report.figure5_wall_ms);
    println!("  figure7: {:>8.1} ms", report.figure7_wall_ms);

    let fleet = fleet_bench(quick)?;
    println!(
        "fleet event loop ({FLEET_BENCH_ENCLOSURES} drives, serial airflow):"
    );
    println!(
        "  1 shard:                     {:>12.0} drive-windows/s",
        fleet.serial_windows_per_sec
    );
    println!(
        "  {} shards:                    {:>12.0} drive-windows/s  ({:.1}x)",
        fleet.shards, fleet.sharded_windows_per_sec, fleet.shard_speedup
    );
    println!(
        "  fleet_routing experiment:    {:>12.1} ms",
        fleet.fleet_routing_wall_ms
    );

    if !quick {
        let root = results_dir()?
            .parent()
            .map(std::path::Path::to_path_buf)
            .ok_or_else(|| LabError::Experiment("results dir has no parent".into()))?;
        for (name, json) in [
            ("BENCH_thermal.json", serde_json::to_string_pretty(&report)),
            ("BENCH_fleet.json", serde_json::to_string_pretty(&fleet)),
        ] {
            let path = root.join(name);
            let json = json.map_err(|e| LabError::Parse(e.to_string()))?;
            std::fs::write(&path, json + "\n")?;
            println!("wrote {}", path.display());
        }
    }

    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_benchmarks_report_positive_rates() {
        let model = ThermalModel::new(DriveThermalSpec::cheetah_15k3());
        let op = OperatingPoint::seeking(Rpm::new(15_000.0));
        assert!(be_steps_per_sec(&model, op, 500, false) > 0.0);
        assert!(be_steps_per_sec(&model, op, 500, true) > 0.0);
        assert!(fe_steps_per_sec(&model, op, 500) > 0.0);
        assert!(steady_solves_per_sec(&model, 50, true) > 0.0);
        assert!(steady_solves_per_sec(&model, 50, false) > 0.0);
    }

    #[test]
    fn fleet_kernel_benchmark_reports_positive_rates() {
        assert!(fleet_windows_per_sec(1, 200).unwrap() > 0.0);
        assert!(fleet_windows_per_sec(4, 200).unwrap() > 0.0);
    }
}
