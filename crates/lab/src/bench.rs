//! `lab bench` — a timed baseline for the thermal kernel and the
//! experiments that lean on it.
//!
//! Measures, in order:
//!
//! - backward-Euler steps/sec through the pre-rewrite kernel (heap
//!   `Vec<Vec<f64>>` matrices, one-shot Gaussian elimination every
//!   step), reproduced verbatim by `diskthermal::bench_support`;
//! - backward-Euler steps/sec with the cached step factorization
//!   disabled (stack arrays, but still assemble + factor + solve every
//!   step);
//! - backward-Euler steps/sec with the cache on (the default path:
//!   factor once per operating point, back-substitute per step);
//! - forward-Euler steps/sec (no linear solve at all);
//! - steady-state solves/sec cold (every solve a distinct operating
//!   point, defeating the memo) and memoized (the same operating point
//!   over and over, the envelope-bisection access pattern);
//! - end-to-end wall time of the `figure5` and `figure7` experiments;
//! - the storage event core alone: windows/sec and completion
//!   events/sec through a single-shard `StorageSystem` window loop on
//!   the figure-scale trace, plus the calendar arrival queue against
//!   the `BinaryHeap` it replaced under a hold-model churn;
//! - drive-windows/sec through the fleet's sharded epoch loop: the
//!   8-drive rack at one shard and at the machine's parallelism, and a
//!   64-drive hierarchical hall swept across shard counts 1/2/4/8, each
//!   split into parallel-sweep and serial-reduce phase times (the
//!   measured serial fraction is the Amdahl input behind the reported
//!   shard speedup), plus the end-to-end `fleet_routing` experiment;
//! - the observability tax: the fleet kernel under a null sink (twice,
//!   interleaved, bounding the noise floor) and under a recording sink,
//!   plus this tree's kernel numbers diffed against the committed
//!   baselines.
//!
//! - the digital twin: checkpoint encode/restore throughput, in-memory
//!   fork latency, and one end-to-end what-if query.
//!
//! A full run writes the numbers (stamped with [`Provenance`]) to
//! `BENCH_thermal.json`, `BENCH_sim.json`, `BENCH_fleet.json`,
//! `BENCH_obs.json`, and `BENCH_twin.json` at the workspace root so
//! regressions have
//! checked-in baselines to diff against; `--quick` shrinks the
//! iteration counts, skips the writes, and instead *asserts* the
//! instrumentation-overhead bound in-process.
//!
//! `lab bench scenario` runs the scenario-subsystem suite on its own —
//! replay-source draw throughput and the per-epoch cost of a rebuild
//! storm — and writes `BENCH_scenario.json` in full mode.
//!
//! `lab bench surrogate` times the two-stage capacity planner's stages
//! against each other: the measured wall cost of screening one
//! candidate configuration through a fitted [`disksurrogate`] grid
//! versus simulating it in full, and writes `BENCH_surrogate.json` in
//! full mode. The run fails if the measured speedup falls below the
//! 100x floor the planner's design assumes.

use crate::registry;
use crate::text::results_dir;
use crate::{LabError, Scale};
use diskfleet::{AirflowGraph, Fleet, FleetConfig, FleetPhaseProfile};
use disksim::{
    CalendarQueue, DiskSpec, Request, RequestKind, StorageSystem, SystemConfig, TimeKey,
};
use diskthermal::{
    DriveThermalSpec, Integrator, OperatingPoint, ThermalModel, TransientSim,
};
use disktwin::{decode, encode, whatif, Twin, TwinConfig, WhatIf};
use serde::Serialize;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;
use units::{Inches, Rpm, Seconds};

/// Step size shared by every integrator benchmark; small enough that
/// forward Euler is stable for the air node's tiny heat capacity.
const DT: f64 = 0.1;

/// Where a committed `BENCH_*.json` baseline came from, so a diff
/// against it can be judged (same host? same commit? how stale?).
#[derive(Debug, Clone, Serialize)]
pub struct Provenance {
    /// Short git commit hash of the working tree, `"unknown"` outside a
    /// git checkout.
    pub git_commit: String,
    /// UTC calendar date the benchmark ran, `YYYY-MM-DD`.
    pub date_utc: String,
    /// `std::thread::available_parallelism` on the benchmarking host.
    pub host_parallelism: usize,
}

/// Converts days since the Unix epoch to a civil (y, m, d) date —
/// Howard Hinnant's `civil_from_days` algorithm.
fn civil_from_days(days: i64) -> (i64, u32, u32) {
    let z = days + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = (if mp < 10 { mp + 3 } else { mp - 9 }) as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// The workspace root (parent of `results/`).
fn workspace_root() -> Result<PathBuf, LabError> {
    results_dir()?
        .parent()
        .map(std::path::Path::to_path_buf)
        .ok_or_else(|| LabError::Experiment("results dir has no parent".into()))
}

impl Provenance {
    /// Stamps the current run: git commit (if any), today's UTC date,
    /// and the host's parallelism.
    pub fn collect() -> Self {
        let git_commit = workspace_root()
            .ok()
            .and_then(|root| {
                std::process::Command::new("git")
                    .args(["rev-parse", "--short", "HEAD"])
                    .current_dir(root)
                    .output()
                    .ok()
            })
            .filter(|out| out.status.success())
            .map(|out| String::from_utf8_lossy(&out.stdout).trim().to_string())
            .filter(|s| !s.is_empty())
            .unwrap_or_else(|| "unknown".into());
        let secs = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs() as i64)
            .unwrap_or(0);
        let (y, m, d) = civil_from_days(secs.div_euclid(86_400));
        Provenance {
            git_commit,
            date_utc: format!("{y:04}-{m:02}-{d:02}"),
            host_parallelism: crate::default_parallelism(),
        }
    }
}

/// Everything one `lab bench` run measured.
#[derive(Debug, Serialize)]
pub struct BenchReport {
    /// True when the quick (smoke-test) iteration counts were used.
    pub quick: bool,
    /// Where and when these numbers were taken.
    pub provenance: Provenance,
    /// Backward-Euler steps/sec through the pre-rewrite heap kernel.
    pub be_prepr_steps_per_sec: f64,
    /// Backward-Euler steps/sec on stack arrays, factoring every step.
    pub be_naive_steps_per_sec: f64,
    /// Backward-Euler steps/sec with the cached factorization.
    pub be_cached_steps_per_sec: f64,
    /// `be_cached / be_prepr` — the whole PR's payoff on the kernel.
    pub cached_speedup: f64,
    /// Forward-Euler steps/sec.
    pub fe_steps_per_sec: f64,
    /// Steady-state solves/sec when every solve is a new operating point.
    pub steady_cold_solves_per_sec: f64,
    /// Steady-state solves/sec when the memo absorbs repeat solves.
    pub steady_memoized_solves_per_sec: f64,
    /// End-to-end wall time of the `figure5` experiment, in ms.
    pub figure5_wall_ms: f64,
    /// End-to-end wall time of the `figure7` experiment, in ms.
    pub figure7_wall_ms: f64,
}

/// Times `steps` backward-Euler steps through the pre-rewrite kernel:
/// heap matrices assembled and eliminated from scratch on every step.
fn be_prepr_steps_per_sec(model: &ThermalModel, op: OperatingPoint, steps: usize) -> f64 {
    let ambient = model.spec().ambient().get();
    let mut temps = [ambient; 4];
    let start = Instant::now();
    for _ in 0..steps {
        temps = diskthermal::bench_support::heap_backward_euler_step(model, op, DT, temps);
    }
    let elapsed = start.elapsed().as_secs_f64();
    black_box(temps);
    steps as f64 / elapsed
}

/// Times `steps` backward-Euler steps over a constant operating point.
fn be_steps_per_sec(model: &ThermalModel, op: OperatingPoint, steps: usize, cached: bool) -> f64 {
    let mut sim = TransientSim::from_ambient(model)
        .with_step(Seconds::new(DT))
        .expect("constant step is positive")
        .with_step_cache(cached);
    let start = Instant::now();
    sim.advance(model, op, Seconds::new(steps as f64 * DT));
    let elapsed = start.elapsed().as_secs_f64();
    black_box(sim.temps());
    steps as f64 / elapsed
}

/// Times `steps` forward-Euler steps over a constant operating point.
fn fe_steps_per_sec(model: &ThermalModel, op: OperatingPoint, steps: usize) -> f64 {
    let mut sim = TransientSim::from_ambient(model)
        .with_step(Seconds::new(DT))
        .expect("constant step is positive")
        .with_integrator(Integrator::ForwardEuler);
    let start = Instant::now();
    sim.advance(model, op, Seconds::new(steps as f64 * DT));
    let elapsed = start.elapsed().as_secs_f64();
    black_box(sim.temps());
    steps as f64 / elapsed
}

/// Times `n` steady-state solves. With `distinct_ops` every solve uses a
/// slightly different spindle speed (all cache misses); without, the
/// same operating point repeats (all hits after the first).
fn steady_solves_per_sec(model: &ThermalModel, n: usize, distinct_ops: bool) -> f64 {
    let start = Instant::now();
    for i in 0..n {
        let rpm = if distinct_ops {
            10_000.0 + i as f64 * 0.01
        } else {
            15_000.0
        };
        black_box(model.steady_state(OperatingPoint::seeking(Rpm::new(rpm))));
    }
    let elapsed = start.elapsed().as_secs_f64();
    n as f64 / elapsed
}

/// Times one full in-process run of a registered experiment, in ms.
fn experiment_wall_ms(name: &str) -> Result<f64, LabError> {
    experiment_wall_ms_at(name, Scale::Full)
}

/// Like [`experiment_wall_ms`] at a caller-chosen scale.
fn experiment_wall_ms_at(name: &str, scale: Scale) -> Result<f64, LabError> {
    let exp = registry::by_name(name, scale)
        .ok_or_else(|| LabError::Experiment(format!("unknown experiment {name:?}")))?;
    let start = Instant::now();
    black_box(exp.run()?);
    Ok(start.elapsed().as_secs_f64() * 1e3)
}

/// What `lab bench` measured about the storage event core. A full run
/// writes this to `BENCH_sim.json` at the workspace root.
///
/// `windows_per_sec` is the acceptance metric for the allocation-free
/// event-core rewrite: the same figure-scale trace the fleet benchmark
/// drives, advanced window by window through a single-shard
/// [`StorageSystem`] with persistent scratch — the loop every DTM and
/// fleet shard runs, minus the thermal model and fleet coordination.
/// It is compared against `serial_windows_per_sec` in the *committed*
/// `BENCH_fleet.json` (read before this run overwrites it), the
/// pre-rewrite whole-stack number the issue baselines against.
#[derive(Debug, Serialize)]
pub struct SimBenchReport {
    /// True when the quick (smoke-test) request counts were used.
    pub quick: bool,
    /// Where and when these numbers were taken.
    pub provenance: Provenance,
    /// Windows/sec through the single-shard window-advancement loop on
    /// the figure-scale trace (best of several passes after a warm-up
    /// pass, so page faults and one-time scratch growth are not
    /// charged to the steady state being measured).
    pub windows_per_sec: f64,
    /// Arrival + completion events/sec through the same loop.
    pub events_per_sec: f64,
    /// `serial_windows_per_sec` from the committed `BENCH_fleet.json`.
    pub baseline_fleet_serial_windows_per_sec: Option<f64>,
    /// `windows_per_sec / baseline` — the event-core rewrite's payoff.
    pub windows_speedup: Option<f64>,
    /// Calendar-queue hold operations (one pop + one push)/sec under a
    /// deterministic pseudo-random churn with occasional far-future
    /// (overflow-bucket) keys.
    pub calendar_hold_ops_per_sec: f64,
    /// The same churn through the `BinaryHeap<Reverse<TimeKey>>` the
    /// calendar queue replaced.
    pub heap_hold_ops_per_sec: f64,
    /// `calendar / heap` — the queue swap's isolated payoff.
    pub calendar_vs_heap_speedup: f64,
}

/// `splitmix64` — a tiny deterministic PRNG step (the workspace links
/// no rand crate).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A uniform draw in `[0, 1)` from the splitmix stream.
fn u01(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
}

/// One timed pass of the figure-scale trace through a single-shard
/// window loop, returning `(windows/sec, events/sec)`.
fn sim_pass(
    sys: &mut StorageSystem,
    trace: &[Request],
    out: &mut Vec<disksim::Completion>,
) -> (f64, f64) {
    /// The fleet control-window width (`FleetConfig::serial`).
    const WINDOW: f64 = 0.25;
    let mut next = 0usize;
    let mut windows = 0u64;
    let mut events = 0u64;
    let start = Instant::now();
    let mut w = 0u64;
    loop {
        w += 1;
        let end = Seconds::new(w as f64 * WINDOW);
        while let Some(r) = trace.get(next) {
            if r.arrival > end {
                break;
            }
            next += 1;
            sys.submit(*r).expect("bench trace is in range");
        }
        out.clear();
        sys.advance_to_into(end, out);
        events += out.len() as u64;
        windows += 1;
        if next == trace.len() && sys.in_flight() == 0 {
            break;
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    // Each request is one arrival event plus one completion event.
    (windows as f64 / elapsed, 2.0 * events as f64 / elapsed)
}

/// Windows/sec and events/sec through the single-shard window loop:
/// one discarded warm-up pass, then the best of `reps` timed passes
/// (the steady state is the quantity of interest; a preempted pass
/// measures the host, not the simulator). Every pass replays the
/// trace from `t = 0` against a fresh system — the event clock only
/// moves forward, so reusing one system would turn later passes into
/// replays of the past.
fn sim_windows_per_sec(requests: u64, reps: usize) -> Result<(f64, f64), LabError> {
    let spec = DiskSpec::era(2002, 1, Rpm::new(15_020.0));
    let fresh = || {
        StorageSystem::new(SystemConfig::single_disk(spec.clone()))
            .map_err(|e| LabError::Experiment(format!("sim bench: {e}")))
    };
    let cap = fresh()?.logical_sectors();
    // The fleet benchmark's trace, folded into one drive's address
    // space at that rack's per-drive arrival rate.
    let rate = 400.0 / FLEET_BENCH_ENCLOSURES as f64;
    let mut trace = fleet_bench_trace(requests, rate);
    for r in &mut trace {
        r.lba %= cap - 64;
    }
    let mut out = Vec::new();
    let _ = sim_pass(&mut fresh()?, &trace, &mut out);
    let mut best = (0.0_f64, 0.0_f64);
    for _ in 0..reps {
        let (wps, eps) = sim_pass(&mut fresh()?, &trace, &mut out);
        if wps > best.0 {
            best = (wps, eps);
        }
    }
    Ok(best)
}

/// Hold-model churn (seed the queue, then pop-one/push-one `n` times)
/// through either the calendar queue or the `BinaryHeap` it replaced.
/// Every 64th push lands far in the future, exercising the calendar's
/// overflow bucket the way RAID rebuilds and idle gaps do.
fn queue_hold_ops_per_sec(n: usize, use_calendar: bool) -> f64 {
    const SEEDED: usize = 4_096;
    let mut state = 0x853c_49e6_748f_ea9b_u64;
    let mut seq = 0u64;
    let draw = |now: f64, state: &mut u64, seq: &mut u64| {
        let far = (*seq).is_multiple_of(64);
        let dt = if far { u01(state) * 100.0 } else { u01(state) * 0.01 };
        let key = TimeKey::new(now + dt, *seq);
        *seq += 1;
        key
    };
    if use_calendar {
        let mut q = CalendarQueue::new();
        for _ in 0..SEEDED {
            let key = draw(0.0, &mut state, &mut seq);
            q.push(key, ());
        }
        let start = Instant::now();
        for _ in 0..n {
            let (key, ()) = q.pop().expect("queue stays seeded");
            let next = draw(key.time(), &mut state, &mut seq);
            q.push(next, ());
        }
        let elapsed = start.elapsed().as_secs_f64();
        black_box(q.len());
        n as f64 / elapsed
    } else {
        let mut q = BinaryHeap::new();
        for _ in 0..SEEDED {
            q.push(Reverse(draw(0.0, &mut state, &mut seq)));
        }
        let start = Instant::now();
        for _ in 0..n {
            let Reverse(key) = q.pop().expect("queue stays seeded");
            q.push(Reverse(draw(key.time(), &mut state, &mut seq)));
        }
        let elapsed = start.elapsed().as_secs_f64();
        black_box(q.len());
        n as f64 / elapsed
    }
}

/// Benchmarks the storage event core: the window loop on the
/// figure-scale trace, and the calendar queue against the heap it
/// replaced.
///
/// Call this *before* overwriting `BENCH_fleet.json`: the speedup is
/// computed against the committed serial baseline.
pub fn sim_bench(quick: bool) -> Result<SimBenchReport, LabError> {
    let baseline = baseline_field("BENCH_fleet.json", "serial_windows_per_sec");
    let (requests, reps, holds) = if quick {
        (800, 2, 50_000)
    } else {
        (48_000, 7, 2_000_000)
    };
    let (windows_per_sec, events_per_sec) = sim_windows_per_sec(requests, reps)?;
    let calendar = queue_hold_ops_per_sec(holds, true);
    let heap = queue_hold_ops_per_sec(holds, false);
    Ok(SimBenchReport {
        quick,
        provenance: Provenance::collect(),
        windows_per_sec,
        events_per_sec,
        baseline_fleet_serial_windows_per_sec: baseline,
        windows_speedup: baseline.map(|b| windows_per_sec / b),
        calendar_hold_ops_per_sec: calendar,
        heap_hold_ops_per_sec: heap,
        calendar_vs_heap_speedup: calendar / heap,
    })
}

/// Drives in the fleet-kernel benchmark rack.
const FLEET_BENCH_ENCLOSURES: usize = 8;
/// Control windows per sync epoch (the `FleetConfig::serial` default).
const FLEET_BENCH_WINDOWS_PER_EPOCH: usize = 4;
/// Drives in the shard-sweep hall (8 rows of 8 racks of 16 bays) — big
/// enough that the parallel window sweeps dominate the epoch boundary.
const FLEET_HALL_BENCH_ENCLOSURES: usize = 1_024;
/// Bays per rack in the shard-sweep hall.
const FLEET_HALL_PER_RACK: usize = 16;
/// Racks per row in the shard-sweep hall.
const FLEET_HALL_RACKS_PER_ROW: usize = 8;
/// Fleet-wide arrival rate for the shard-sweep hall, requests/s. Low
/// per drive on purpose: each request is routed in the serial phase but
/// simulated in the parallel one, so a light per-drive load is the
/// regime where the epoch boundary itself — not the disks — is on
/// trial.
const FLEET_HALL_RATE: f64 = 800.0;
/// Shard counts the sweep measures.
const FLEET_SHARD_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// One shard count's measurement in the hall shard sweep.
#[derive(Debug, Serialize)]
pub struct FleetShardRow {
    /// Shards this row ran on.
    pub shards: usize,
    /// Drive-windows/sec through the epoch loop.
    pub windows_per_sec: f64,
    /// Wall-clock spent in the parallel phases (window sweeps, airflow
    /// folds, event merge), ms.
    pub parallel_phase_ms: f64,
    /// Wall-clock spent in the serial reduces (routing commit, airflow
    /// coupling, coordinator commit), ms.
    pub serial_phase_ms: f64,
    /// This row's wall-clock speedup over the one-shard row. On a host
    /// with fewer cores than shards this hovers near 1.0 — the honest
    /// number; see `shard_speedup_basis` on the report.
    pub wall_speedup_vs_serial: f64,
}

/// What `lab bench` measured about the fleet event loop. A full run
/// writes this to `BENCH_fleet.json` at the workspace root.
///
/// Two workloads: the historical 8-drive *rack* (whose one-shard
/// `serial_windows_per_sec` is the baseline `BENCH_sim.json` diffs
/// against), and a 64-drive hierarchical *hall* swept across shard
/// counts. The phase fields split each run's wall-clock into the
/// parallel per-enclosure work versus the serial epoch-boundary
/// reduces. By Amdahl's law the serial fraction caps the shard payoff
/// at `1 / (serial_fraction + (1 - serial_fraction) / shards)`; the
/// split-phase epoch boundary exists to keep that fraction small, and
/// `shard_speedup_basis` records whether `shard_speedup` is a wall-clock
/// measurement (host has >= 8 cores) or the Amdahl projection from the
/// measured serial fraction (fewer cores — extra shards cannot beat
/// physics, so the wall clock says nothing about scaling).
#[derive(Debug, Serialize)]
pub struct FleetBenchReport {
    /// True when the quick (smoke-test) request counts were used.
    pub quick: bool,
    /// Where and when these numbers were taken.
    pub provenance: Provenance,
    /// Shard count actually used by the sharded rack measurement
    /// (`disksim::par::default_parallelism()` on the benchmarking
    /// host).
    pub shards: usize,
    /// Drive-windows/sec through the rack epoch loop on one shard.
    pub serial_windows_per_sec: f64,
    /// Wall-clock the one-shard rack run spent in the (nominally
    /// parallel) window sweeps, ms.
    pub serial_run_parallel_phase_ms: f64,
    /// Wall-clock the one-shard rack run spent in serial epoch-boundary
    /// synchronization, ms.
    pub serial_run_serial_phase_ms: f64,
    /// Drive-windows/sec through the rack with the sharded loop.
    pub sharded_windows_per_sec: f64,
    /// Wall-clock the sharded rack run spent in the parallel window
    /// sweeps, ms.
    pub sharded_run_parallel_phase_ms: f64,
    /// Wall-clock the sharded rack run spent in serial epoch-boundary
    /// synchronization, ms.
    pub sharded_run_serial_phase_ms: f64,
    /// Drives in the shard-sweep hall.
    pub hall_enclosures: usize,
    /// The hall workload at each sweep shard count, in sweep order.
    pub shard_sweep: Vec<FleetShardRow>,
    /// Fraction of the one-shard hall run's wall-clock in the serial
    /// reduces — the Amdahl input that bounds every shard payoff.
    pub serial_fraction: f64,
    /// `1 / (serial_fraction + (1 - serial_fraction) / 8)` — what
    /// Amdahl's law permits at 8 shards given the measured serial
    /// fraction.
    pub amdahl_speedup_at_8: f64,
    /// The 8-shard payoff: measured wall-clock ratio when the host has
    /// at least 8 cores, otherwise the Amdahl projection above.
    pub shard_speedup: f64,
    /// `"measured"`, or `"amdahl-projected (host_parallelism=N)"` when
    /// the host cannot exercise 8 shards in parallel.
    pub shard_speedup_basis: String,
    /// End-to-end wall time of the `fleet_routing` experiment, in ms
    /// (quick scale under `--quick`, full scale otherwise).
    pub fleet_routing_wall_ms: f64,
}

/// A deterministic synthetic fleet trace: fixed-rate arrivals striding
/// the address space.
fn fleet_bench_trace(requests: u64, rate: f64) -> Vec<Request> {
    (0..requests)
        .map(|i| {
            Request::new(
                i,
                Seconds::new(i as f64 / rate),
                0,
                i.wrapping_mul(7_777_777),
                8,
                if i % 4 == 0 { RequestKind::Write } else { RequestKind::Read },
            )
        })
        .collect()
}

/// Times one fleet run, returning drive-windows advanced per second
/// and where the wall-clock went.
fn fleet_windows_per_sec(
    threads: usize,
    requests: u64,
) -> Result<(f64, FleetPhaseProfile), LabError> {
    let fail = |e: &dyn std::fmt::Display| LabError::Experiment(format!("fleet bench: {e}"));
    let mut config = FleetConfig::serial(
        FLEET_BENCH_ENCLOSURES,
        DiskSpec::era(2002, 1, Rpm::new(15_020.0)),
        DriveThermalSpec::new(Inches::new(2.6), 1),
        12.0,
    )
    .map_err(|e| fail(&e))?;
    config.threads = threads;
    let fleet = Fleet::new(config).map_err(|e| fail(&e))?;
    let trace = fleet_bench_trace(requests, 400.0);
    let mut sink = diskobs::Sink::null();
    let start = Instant::now();
    let (report, profile) = fleet.run_profiled(trace, &mut sink).map_err(|e| fail(&e))?;
    let elapsed = start.elapsed().as_secs_f64();
    let windows =
        report.epochs * (FLEET_BENCH_WINDOWS_PER_EPOCH * FLEET_BENCH_ENCLOSURES) as u64;
    Ok((windows as f64 / elapsed, profile))
}

/// Times one hall-workload fleet run (hierarchical airflow,
/// thermal-aware routing) at the given shard count, returning
/// drive-windows advanced per second and where the wall-clock went.
fn fleet_hall_windows_per_sec(
    threads: usize,
    requests: u64,
) -> Result<(f64, FleetPhaseProfile), LabError> {
    let fail = |e: &dyn std::fmt::Display| LabError::Experiment(format!("fleet hall bench: {e}"));
    let thermal = DriveThermalSpec::new(Inches::new(2.6), 1);
    let mut config = FleetConfig::serial(
        FLEET_HALL_BENCH_ENCLOSURES,
        DiskSpec::era(2002, 1, Rpm::new(15_020.0)),
        thermal,
        12.0,
    )
    .map_err(|e| fail(&e))?;
    config.airflow = AirflowGraph::hall(
        FLEET_HALL_BENCH_ENCLOSURES,
        FLEET_HALL_PER_RACK,
        FLEET_HALL_RACKS_PER_ROW,
        thermal.ambient(),
        4.0e-3,
        1.2e-4,
        7.0e-5,
    )
    .map_err(|e| fail(&e))?;
    config.routing = diskfleet::RoutingPolicy::ThermalAware {
        envelope: diskthermal::THERMAL_ENVELOPE,
    };
    config.threads = threads;
    let fleet = Fleet::new(config).map_err(|e| fail(&e))?;
    let trace = fleet_bench_trace(requests, FLEET_HALL_RATE);
    let mut sink = diskobs::Sink::null();
    let start = Instant::now();
    let (report, profile) = fleet.run_profiled(trace, &mut sink).map_err(|e| fail(&e))?;
    let elapsed = start.elapsed().as_secs_f64();
    let windows =
        report.epochs * (FLEET_BENCH_WINDOWS_PER_EPOCH * FLEET_HALL_BENCH_ENCLOSURES) as u64;
    Ok((windows as f64 / elapsed, profile))
}

/// Benchmarks the fleet event loop: the 8-drive rack at one shard and
/// at the machine's parallelism, the 64-drive hall across the shard
/// sweep, plus the end-to-end `fleet_routing` experiment.
///
/// The first fleet run in a process pays one-time costs (page faults,
/// lazy thread-pool and scratch initialization) worth ~25% of this
/// workload; a discarded warm-up run keeps them out of the steady
/// state, and each configuration keeps its best of several passes.
/// The hall sweep does not shrink under `--quick`: the measured serial
/// fraction is the number `scripts/verify.sh` gates on, and a smaller
/// workload would only add noise to it.
pub fn fleet_bench(quick: bool) -> Result<FleetBenchReport, LabError> {
    let (requests, reps) = if quick { (800, 1) } else { (6_000, 3) };
    let shards = disksim::par::default_parallelism();
    let _ = fleet_windows_per_sec(1, requests.min(800))?;
    let best = |threads: usize| -> Result<(f64, FleetPhaseProfile), LabError> {
        let mut best = fleet_windows_per_sec(threads, requests)?;
        for _ in 1..reps {
            let run = fleet_windows_per_sec(threads, requests)?;
            if run.0 > best.0 {
                best = run;
            }
        }
        Ok(best)
    };
    let (serial, serial_profile) = best(1)?;
    let (sharded, sharded_profile) = best(shards)?;

    let (hall_requests, hall_reps) = if quick { (12_000, 1) } else { (12_000, 2) };
    let _ = fleet_hall_windows_per_sec(1, 2_000)?;
    let mut sweep = Vec::new();
    let mut base_wps = 0.0;
    let mut base_profile = FleetPhaseProfile::default();
    for count in FLEET_SHARD_SWEEP {
        let mut best = fleet_hall_windows_per_sec(count, hall_requests)?;
        for _ in 1..hall_reps {
            let run = fleet_hall_windows_per_sec(count, hall_requests)?;
            if run.0 > best.0 {
                best = run;
            }
        }
        if count == 1 {
            base_wps = best.0;
            base_profile = best.1;
        }
        sweep.push(FleetShardRow {
            shards: count,
            windows_per_sec: best.0,
            parallel_phase_ms: best.1.parallel_ms,
            serial_phase_ms: best.1.serial_ms,
            wall_speedup_vs_serial: best.0 / base_wps,
        });
    }
    let serial_fraction = base_profile.serial_fraction();
    let amdahl_speedup_at_8 = 1.0 / (serial_fraction + (1.0 - serial_fraction) / 8.0);
    let provenance = Provenance::collect();
    let measured_at_8 = sweep
        .iter()
        .find(|r| r.shards == 8)
        .map_or(1.0, |r| r.wall_speedup_vs_serial);
    let (shard_speedup, shard_speedup_basis) = if provenance.host_parallelism >= 8 {
        (measured_at_8, "measured".to_string())
    } else {
        (
            amdahl_speedup_at_8,
            format!(
                "amdahl-projected (host_parallelism={})",
                provenance.host_parallelism
            ),
        )
    };

    let scale = if quick { Scale::Quick } else { Scale::Full };
    let routing_ms = experiment_wall_ms_at("fleet_routing", scale)?;
    Ok(FleetBenchReport {
        quick,
        provenance,
        shards,
        serial_windows_per_sec: serial,
        serial_run_parallel_phase_ms: serial_profile.parallel_ms,
        serial_run_serial_phase_ms: serial_profile.serial_ms,
        sharded_windows_per_sec: sharded,
        sharded_run_parallel_phase_ms: sharded_profile.parallel_ms,
        sharded_run_serial_phase_ms: sharded_profile.serial_ms,
        hall_enclosures: FLEET_HALL_BENCH_ENCLOSURES,
        shard_sweep: sweep,
        serial_fraction,
        amdahl_speedup_at_8,
        shard_speedup,
        shard_speedup_basis,
        fleet_routing_wall_ms: routing_ms,
    })
}

/// What `lab bench` measured about instrumentation overhead. A full run
/// writes this to `BENCH_obs.json` at the workspace root.
///
/// The `baseline_*` / `*_delta_pct` fields compare against the numbers
/// in the *committed* `BENCH_thermal.json` / `BENCH_fleet.json` (read
/// before this run overwrites them), so a committed `BENCH_obs.json`
/// records the genuine before/after cost of threading the recorder
/// through the hot loops. The `fleet_null_*` fields are an in-process
/// control: two interleaved null-sink measurements whose spread bounds
/// the benchmark's own noise floor.
#[derive(Debug, Serialize)]
pub struct ObsBenchReport {
    /// True when the quick (smoke-test) request counts were used.
    pub quick: bool,
    /// Where and when these numbers were taken.
    pub provenance: Provenance,
    /// Backward-Euler steps/sec with the cached factorization, measured
    /// at the full iteration count even under `--quick` (it is cheap).
    pub be_cached_steps_per_sec: f64,
    /// `be_cached_steps_per_sec` from the committed `BENCH_thermal.json`.
    pub baseline_be_cached_steps_per_sec: Option<f64>,
    /// Kernel slowdown vs the committed baseline, percent (positive =
    /// this tree is slower).
    pub be_cached_delta_pct: Option<f64>,
    /// Fleet kernel wall time with the null sink, ms (mean over the
    /// interleaved rounds).
    pub fleet_null_wall_ms: f64,
    /// Second, independent null-sink measurement, ms (mean over the
    /// same rounds, bracket order alternating so drift cancels).
    pub fleet_null_repeat_wall_ms: f64,
    /// Median paired deviation between the two null runs of each
    /// round, percent — the noise floor any overhead claim must clear.
    /// Paired within rounds so low-frequency host drift cancels.
    pub null_noise_pct: f64,
    /// Fleet kernel wall time with a recording (buffer) sink, ms.
    pub fleet_recording_wall_ms: f64,
    /// Recording-sink slowdown vs the faster null run, percent.
    pub recording_overhead_pct: f64,
    /// Events the recording run captured.
    pub recorded_events: u64,
    /// End-to-end `fleet_routing` wall time, ms (full mode only;
    /// best of 2).
    pub fleet_routing_wall_ms: Option<f64>,
    /// `fleet_routing_wall_ms` from the committed `BENCH_fleet.json`.
    pub baseline_fleet_routing_wall_ms: Option<f64>,
    /// `fleet_routing` slowdown vs the committed baseline, percent.
    pub fleet_routing_delta_pct: Option<f64>,
}

/// Reads one numeric field out of a committed `BENCH_*.json`, if the
/// file exists and has it.
fn baseline_field(file: &str, field: &str) -> Option<f64> {
    let path = workspace_root().ok()?.join(file);
    let text = std::fs::read_to_string(path).ok()?;
    let value: serde_json::Value = serde_json::from_str(&text).ok()?;
    value.get(field)?.as_f64()
}

/// Reads one string field out of a committed `BENCH_*.json`, if the
/// file exists and has it.
fn baseline_str_field(file: &str, field: &str) -> Option<String> {
    let path = workspace_root().ok()?.join(file);
    let text = std::fs::read_to_string(path).ok()?;
    let value: serde_json::Value = serde_json::from_str(&text).ok()?;
    value.get(field)?.as_str().map(str::to_string)
}

/// Fractional regression the `--quick` gate tolerates when diffing this
/// run's re-measured numbers against the committed full-run
/// `BENCH_*.json` baselines: a rate may fall to half its baseline, a
/// wall time may grow to 1.5x. Quick iteration counts are smoke-test
/// sized and CI hosts are noisy, so the gate is deliberately loose —
/// it exists to catch structural regressions (a lost cache, an
/// accidentally quadratic loop), not percent-level drift. A genuine
/// host change that trips it calls for regenerating the baselines with
/// a full `lab bench` run, not for widening the tolerance.
pub const REGRESSION_TOLERANCE: f64 = 0.5;

/// One quick-gate comparison: a metric this run re-measured against
/// the same field in a committed baseline file.
struct GateCheck {
    /// Baseline file name at the workspace root.
    file: &'static str,
    /// Field inside it (and the display name of the metric).
    field: &'static str,
    /// This run's measurement.
    now: f64,
    /// Whether the metric is a rate (bigger = faster) or a wall/latency
    /// number (smaller = faster).
    higher_is_better: bool,
}

/// Diffs quick-run measurements against the committed `BENCH_*.json`
/// baselines and fails past [`REGRESSION_TOLERANCE`], so `lab bench
/// --quick` (and `scripts/verify.sh` through it) exits non-zero when a
/// change costs a kernel its committed performance. Checks whose
/// baseline file or field is missing are skipped — a fresh checkout
/// without baselines still benches cleanly. Skipped entirely (with a
/// note) in unoptimized builds, where every number is an artifact of
/// the missing optimizer, not of the code under test.
fn gate_against_baselines(checks: &[GateCheck]) -> Result<(), LabError> {
    if cfg!(debug_assertions) {
        println!(
            "regression gate: skipped (unoptimized build; baselines are release numbers)"
        );
        return Ok(());
    }
    let mut compared = 0usize;
    let mut failures = Vec::new();
    for check in checks {
        let Some(base) = baseline_field(check.file, check.field) else {
            continue;
        };
        if !(base.is_finite() && base > 0.0) {
            continue;
        }
        compared += 1;
        let regression = if check.higher_is_better {
            (base - check.now) / base
        } else {
            (check.now - base) / base
        };
        if regression > REGRESSION_TOLERANCE {
            failures.push(format!(
                "{}:{} regressed {:.0}%: {:.3e} now vs {:.3e} committed",
                check.file,
                check.field,
                regression * 100.0,
                check.now,
                base
            ));
        }
    }
    if failures.is_empty() {
        println!(
            "regression gate: {compared} baseline metric(s) within {:.0}% of committed",
            REGRESSION_TOLERANCE * 100.0
        );
        Ok(())
    } else {
        Err(LabError::Experiment(format!(
            "quick-bench regression gate failed ({} of {} checks):\n  {}",
            failures.len(),
            compared,
            failures.join("\n  ")
        )))
    }
}

/// CPU nanoseconds this process has consumed.
///
/// On Linux/x86_64, `clock_gettime(CLOCK_PROCESS_CPUTIME_ID)` by raw
/// syscall (the workspace links no libc-wrapping crate): full
/// nanosecond resolution, immune to scheduler preemption. Elsewhere,
/// falls back to the scheduler's `/proc/self/schedstat` accounting
/// (tick-quantized), or `None` off Linux entirely.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
fn cpu_ns() -> Option<u64> {
    let mut ts = [0i64; 2]; // (tv_sec, tv_nsec)
    let ret: i64;
    unsafe {
        std::arch::asm!(
            "syscall",
            in("rax") 228i64, // SYS_clock_gettime
            in("rdi") 2i64,   // CLOCK_PROCESS_CPUTIME_ID
            in("rsi") ts.as_mut_ptr(),
            out("rcx") _,
            out("r11") _,
            lateout("rax") ret,
        );
    }
    (ret == 0).then(|| ts[0] as u64 * 1_000_000_000 + ts[1] as u64)
}

/// See the x86_64 variant: tick-quantized scheduler accounting.
#[cfg(all(target_os = "linux", not(target_arch = "x86_64")))]
fn cpu_ns() -> Option<u64> {
    let text = std::fs::read_to_string("/proc/self/schedstat").ok()?;
    text.split_whitespace().next()?.parse().ok()
}

/// No portable CPU clock here; callers fall back to wall time.
#[cfg(not(target_os = "linux"))]
fn cpu_ns() -> Option<u64> {
    None
}

/// Times one single-shard fleet-kernel run against the given sink, ms.
///
/// Prefers CPU time over wall time: the overhead comparison needs to
/// resolve fractions of a percent, and on a busy host wall clocks
/// charge scheduler preemption to whichever run it lands on. Falls
/// back to wall time where the scheduler stats are unavailable.
fn fleet_wall_ms_with(requests: u64, sink: &mut diskobs::Sink) -> Result<f64, LabError> {
    let fail = |e: &dyn std::fmt::Display| LabError::Experiment(format!("obs bench: {e}"));
    let mut config = FleetConfig::serial(
        FLEET_BENCH_ENCLOSURES,
        DiskSpec::era(2002, 1, Rpm::new(15_020.0)),
        DriveThermalSpec::new(Inches::new(2.6), 1),
        12.0,
    )
    .map_err(|e| fail(&e))?;
    config.threads = 1;
    let fleet = Fleet::new(config).map_err(|e| fail(&e))?;
    let trace = fleet_bench_trace(requests, 400.0);
    let cpu_start = cpu_ns();
    let start = Instant::now();
    fleet.run_with_sink(trace, sink).map_err(|e| fail(&e))?;
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    Ok(match (cpu_start, cpu_ns()) {
        (Some(a), Some(b)) if b > a => (b - a) as f64 / 1e6,
        _ => wall_ms,
    })
}

/// Measures the observability tax: the fleet kernel with a null sink
/// (twice, interleaved, to expose the noise floor) against the same
/// kernel with a recording sink, plus this tree's thermal-kernel and
/// `fleet_routing` numbers diffed against the committed baselines.
///
/// Call this *before* overwriting the `BENCH_*.json` baselines.
pub fn obs_bench(quick: bool) -> Result<ObsBenchReport, LabError> {
    let baseline_be = baseline_field("BENCH_thermal.json", "be_cached_steps_per_sec");
    let baseline_routing = baseline_field("BENCH_fleet.json", "fleet_routing_wall_ms");

    // Full-size kernel measurement even in quick mode: 200k cached
    // steps run in ~10 ms, and keeping the count fixed keeps the
    // number comparable to the committed baseline.
    let model = ThermalModel::new(DriveThermalSpec::cheetah_15k3());
    let op = OperatingPoint::seeking(Rpm::new(15_000.0));
    let be_cached = (0..3)
        .map(|_| be_steps_per_sec(&model, op, 200_000, true))
        .fold(0.0_f64, f64::max);

    // Two independent null-sink measurements bracket every recording
    // run, with the bracket order alternating round to round, so any
    // monotonic drift (cgroup throttling, cache warming) hits both
    // null series equally and cancels in the means. Runs are long
    // enough (tens of ms) that timer jitter cannot fake a
    // percent-level signal; the whole measurement is under a second
    // in either mode, so the count does not shrink under `--quick` —
    // a shorter run would only add noise.
    let requests = 48_000;
    const ROUNDS: usize = 9;
    let (mut null_a, mut rec, mut null_b) = (Vec::new(), Vec::new(), Vec::new());
    let mut ratios = Vec::new();
    let mut recorded_events = 0u64;
    for round in 0..ROUNDS {
        let mut buffer = diskobs::Sink::buffer();
        rec.push(fleet_wall_ms_with(requests, &mut buffer)?);
        recorded_events = buffer.drain().len() as u64;
        drop(buffer);
        // A discarded warmup run absorbs the allocator churn the
        // recording buffer leaves behind, so the paired null runs that
        // follow see identical machine state.
        let mut warmup = diskobs::Sink::null();
        let _ = fleet_wall_ms_with(requests, &mut warmup)?;
        let mut first = diskobs::Sink::null();
        let first_ms = fleet_wall_ms_with(requests, &mut first)?;
        let mut second = diskobs::Sink::null();
        let second_ms = fleet_wall_ms_with(requests, &mut second)?;
        let (a_ms, b_ms) = if round % 2 == 0 {
            (first_ms, second_ms)
        } else {
            (second_ms, first_ms)
        };
        null_a.push(a_ms);
        null_b.push(b_ms);
        // Pair the adjacent null runs of the *same* round: they sit
        // well inside any low-frequency host drift, so their ratio
        // isolates genuine systematic differences.
        ratios.push(a_ms / b_ms);
    }
    // Medians, not means: one pathological round (a scheduler or GC
    // spike on the host) should cost a sample, not skew the verdict.
    let median = |mut v: Vec<f64>| {
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    };
    let (null_a, rec, null_b) = (median(null_a), median(rec), median(null_b));
    let null_best = null_a.min(null_b);
    let noise_pct = (median(ratios) - 1.0).abs() * 100.0;
    let recording_overhead_pct = (rec - null_best) / null_best * 100.0;

    let routing_ms = if quick {
        None
    } else {
        // CPU clock and best-of-3: the end-to-end experiment swings
        // ±10% on wall time under host interference, which would drown
        // the 2% bound this comparison exists to check.
        let mut best = f64::MAX;
        for _ in 0..3 {
            let exp = registry::by_name("fleet_routing", Scale::Full)
                .ok_or_else(|| LabError::Experiment("fleet_routing not registered".into()))?;
            let cpu_start = cpu_ns();
            let start = Instant::now();
            black_box(exp.run()?);
            let wall_ms = start.elapsed().as_secs_f64() * 1e3;
            best = best.min(match (cpu_start, cpu_ns()) {
                (Some(a), Some(b)) if b > a => (b - a) as f64 / 1e6,
                _ => wall_ms,
            });
        }
        Some(best)
    };

    let delta = |now: f64, base: Option<f64>, higher_is_better: bool| {
        base.map(|b| {
            if higher_is_better {
                (b - now) / b * 100.0
            } else {
                (now - b) / b * 100.0
            }
        })
    };
    Ok(ObsBenchReport {
        quick,
        provenance: Provenance::collect(),
        be_cached_steps_per_sec: be_cached,
        baseline_be_cached_steps_per_sec: baseline_be,
        be_cached_delta_pct: delta(be_cached, baseline_be, true),
        fleet_null_wall_ms: null_a,
        fleet_null_repeat_wall_ms: null_b,
        null_noise_pct: noise_pct,
        fleet_recording_wall_ms: rec,
        recording_overhead_pct,
        recorded_events,
        fleet_routing_wall_ms: routing_ms,
        baseline_fleet_routing_wall_ms: baseline_routing,
        fleet_routing_delta_pct: routing_ms
            .and_then(|now| delta(now, baseline_routing, false)),
    })
}

/// Runs the benchmark suite. Quick mode shrinks the iteration counts to
/// smoke-test territory and does not write `BENCH_thermal.json`.
/// What the digital-twin benchmark measured. A full `lab bench` run
/// writes this to `BENCH_twin.json` at the workspace root.
#[derive(Debug, Serialize)]
pub struct TwinBenchReport {
    /// True when the quick (smoke-test) iteration counts were used.
    pub quick: bool,
    /// Where/when this run happened.
    pub provenance: Provenance,
    /// Serialized checkpoint size for the benchmarked twin, bytes.
    pub state_bytes: u64,
    /// Checkpoint serializations (state → versioned bytes) per second.
    pub checkpoint_encode_per_sec: f64,
    /// Encode throughput in MB/s of checkpoint bytes produced.
    pub checkpoint_encode_mb_per_sec: f64,
    /// Checkpoint restores (bytes → validated state → live twin) per
    /// second.
    pub checkpoint_restore_per_sec: f64,
    /// Mean in-memory fork latency (capture + rebuild), ms.
    pub fork_latency_ms: f64,
    /// One pinned what-if query (two forks over the horizon), ms.
    pub whatif_wall_ms: f64,
    /// Provenance notes on the restore path: what moved the committed
    /// numbers and why.
    pub notes: String,
}

/// Why restore now sits near encode parity instead of 55x behind it
/// (744/s encode vs 13.6/s restore in the baseline committed at
/// 8d04c84). Profiling split that 73 ms restore into ~62 ms of JSON
/// parsing and ~0.03 ms of actual state rebuild: the vendored parser
/// re-validated UTF-8 over the whole remaining input for every string
/// character (quadratic in body size). Unescaped runs are now
/// bulk-copied and validated once — the framed FNV-1a checksum plus one
/// linear UTF-8 pass is all the byte-level validation a body needs —
/// and `CalendarQueue::from_sorted_entries` preallocates its buckets
/// from the recorded sizes. The structural re-validation in
/// `StorageSystem::restore_state` stays: it guards against states whose
/// JSON parses but whose links are inconsistent, and it measures in the
/// tens of microseconds.
const TWIN_RESTORE_NOTES: &str = "restore was parser-bound, not validation-bound: \
    quadratic per-char UTF-8 re-validation in the vendored JSON parser cost ~62 ms \
    of the 73 ms restore; unescaped runs are now copied in bulk and validated once, \
    and calendar buckets preallocate from recorded sizes. Structural link validation \
    (~0.03 ms) is kept.";

/// Times the digital-twin state machinery: checkpoint encode/restore
/// throughput, in-memory fork latency, and one end-to-end what-if.
pub fn twin_bench(quick: bool) -> Result<TwinBenchReport, LabError> {
    let fail = |e: &dyn std::fmt::Display| LabError::Experiment(format!("twin bench: {e}"));
    let (reps, warm_epochs, horizon) = if quick { (20u32, 2, 2) } else { (200u32, 4, 8) };
    let mut twin =
        Twin::new(TwinConfig::preset(workloads::oltp(), 4)).map_err(|e| fail(&e))?;
    for _ in 0..warm_epochs {
        twin.advance_epoch().map_err(|e| fail(&e))?;
    }
    let state = twin.capture_state();

    let start = Instant::now();
    let mut bytes = 0u64;
    for _ in 0..reps {
        bytes = black_box(encode(&state).map_err(|e| fail(&e))?).len() as u64;
    }
    let encode_s = start.elapsed().as_secs_f64().max(1e-9);

    let encoded = encode(&state).map_err(|e| fail(&e))?;
    let start = Instant::now();
    for _ in 0..reps {
        let restored =
            Twin::restore_state(decode(&encoded).map_err(|e| fail(&e))?).map_err(|e| fail(&e))?;
        black_box(restored.epoch());
    }
    let restore_s = start.elapsed().as_secs_f64().max(1e-9);

    let start = Instant::now();
    for _ in 0..reps {
        let fork = twin.fork().map_err(|e| fail(&e))?;
        black_box(fork.epoch());
    }
    let fork_s = start.elapsed().as_secs_f64().max(1e-9);

    let start = Instant::now();
    let report = whatif(
        &state,
        &WhatIf {
            inlet_delta_c: Some(5.0),
            ..WhatIf::default()
        },
        horizon,
        None,
    )
    .map_err(|e| fail(&e))?;
    black_box(report.baseline.completed);
    let whatif_s = start.elapsed().as_secs_f64();

    Ok(TwinBenchReport {
        quick,
        provenance: Provenance::collect(),
        state_bytes: bytes,
        checkpoint_encode_per_sec: f64::from(reps) / encode_s,
        checkpoint_encode_mb_per_sec: (bytes * u64::from(reps)) as f64 / encode_s / 1e6,
        checkpoint_restore_per_sec: f64::from(reps) / restore_s,
        fork_latency_ms: fork_s * 1e3 / f64::from(reps),
        whatif_wall_ms: whatif_s * 1e3,
        notes: TWIN_RESTORE_NOTES.to_string(),
    })
}

/// What the scenario-subsystem benchmark measured. `lab bench scenario`
/// writes this to `BENCH_scenario.json` at the workspace root.
#[derive(Debug, Serialize)]
pub struct ScenarioBenchReport {
    /// True when the quick (smoke-test) iteration counts were used.
    pub quick: bool,
    /// Where/when this run happened.
    pub provenance: Provenance,
    /// Raw draws/sec through a wrapping [`diskscenario::ReplaySource`]
    /// (the per-request cost of trace replay before the fleet sees it).
    pub replay_draws_per_sec: f64,
    /// Mean epoch wall time of an unperturbed fleet run through the
    /// scenario driver, ms.
    pub baseline_epoch_ms: f64,
    /// Mean epoch wall time with a RAID-5 rebuild storm in flight, ms.
    pub storm_epoch_ms: f64,
    /// `storm_epoch_ms` over `baseline_epoch_ms`, percent above 100.
    pub storm_overhead_pct: f64,
}

/// Builds the 8-enclosure RAID-5 fleet the scenario bench steps.
fn scenario_bench_fleet() -> Result<Fleet, LabError> {
    let fail = |e: &dyn std::fmt::Display| LabError::Experiment(format!("scenario bench: {e}"));
    let mut config = FleetConfig::serial(
        FLEET_BENCH_ENCLOSURES,
        DiskSpec::era(2002, 1, Rpm::new(15_020.0)),
        DriveThermalSpec::new(Inches::new(2.6), 1),
        12.0,
    )
    .map_err(|e| fail(&e))?;
    config.array = Some(diskfleet::EnclosureArray {
        disks: 4,
        stripe_sectors: 65_536,
    });
    Fleet::new(config).map_err(|e| fail(&e))
}

/// Times the scenario subsystem: replay-source draw throughput and the
/// per-epoch cost a rebuild storm adds to the fleet's event loop.
pub fn scenario_bench(quick: bool) -> Result<ScenarioBenchReport, LabError> {
    use diskscenario::{run_scenario, ArrivalSource, Injection, Scenario, ScenarioEngine};
    let fail = |e: &dyn std::fmt::Display| LabError::Experiment(format!("scenario bench: {e}"));
    let (draws, epochs) = if quick { (50_000u64, 6u64) } else { (2_000_000, 24) };

    // Replay-source draw throughput: a short recorded trace wrapped
    // endlessly, so the lap arithmetic is on the measured path.
    let trace: Vec<Request> = (0..512u64)
        .map(|i| {
            Request::new(
                i,
                Seconds::new(i as f64 * 1e-3),
                0,
                i.wrapping_mul(7_919) % (1 << 22),
                8,
                if i % 3 == 0 { RequestKind::Write } else { RequestKind::Read },
            )
        })
        .collect();
    let mut source = ArrivalSource::replay(trace).map_err(|e| fail(&e))?;
    let start = Instant::now();
    for _ in 0..draws {
        black_box(source.next_request());
    }
    let draw_s = start.elapsed().as_secs_f64().max(1e-9);

    // Epoch cost with and without a rebuild storm, same arrival stream.
    let arrivals = || -> Result<ArrivalSource, LabError> {
        let preset = workloads::oltp();
        let generator = workloads::TraceGenerator::new(
            preset.profile.clone(),
            preset.arrivals.with_mean_rate(400.0),
            1,
            1 << 24,
        )
        .map_err(|e| fail(&e))?;
        Ok(ArrivalSource::Synthetic(generator.stream(11)))
    };
    let run = |scenario: Scenario| -> Result<f64, LabError> {
        let mut fleet = scenario_bench_fleet()?;
        let mut source = arrivals()?;
        let mut engine = ScenarioEngine::new(scenario);
        let mut samples = Vec::new();
        let start = Instant::now();
        run_scenario(
            &mut fleet,
            &mut source,
            &mut engine,
            epochs,
            &mut diskobs::Sink::null(),
            &mut samples,
        )
        .map_err(|e| fail(&e))?;
        Ok(start.elapsed().as_secs_f64() * 1e3 / epochs as f64)
    };
    let baseline_ms = run(Scenario::new())?;
    let storm_ms = run(Scenario::new().with(Injection::DriveFailure {
        at_epoch: 0,
        enclosure: 2,
        disk: 1,
        rebuild: diskfleet::RebuildSpec {
            rate_sectors_per_sec: 2_000_000.0,
            chunk_sectors: 16_384,
        },
    }))?;

    Ok(ScenarioBenchReport {
        quick,
        provenance: Provenance::collect(),
        replay_draws_per_sec: draws as f64 / draw_s,
        baseline_epoch_ms: baseline_ms,
        storm_epoch_ms: storm_ms,
        storm_overhead_pct: (storm_ms / baseline_ms - 1.0) * 100.0,
    })
}

/// `lab bench scenario` — run only the scenario suite, print it, and
/// (full mode) write `BENCH_scenario.json` at the workspace root.
pub fn run_scenario_bench(quick: bool) -> Result<ScenarioBenchReport, LabError> {
    let report = scenario_bench(quick)?;
    println!(
        "scenario subsystem ({FLEET_BENCH_ENCLOSURES} RAID-5 enclosures, OLTP stream):"
    );
    println!(
        "  replay-source draws:         {:>12.0} requests/s",
        report.replay_draws_per_sec
    );
    println!(
        "  epoch cost, unperturbed:     {:>12.2} ms/epoch",
        report.baseline_epoch_ms
    );
    println!(
        "  epoch cost, rebuild storm:   {:>12.2} ms/epoch  ({:+.1}%)",
        report.storm_epoch_ms, report.storm_overhead_pct
    );
    if quick {
        // Per-epoch and per-draw costs are scale-free, so they diff
        // cleanly against the committed full run.
        gate_against_baselines(&[
            GateCheck {
                file: "BENCH_scenario.json",
                field: "replay_draws_per_sec",
                now: report.replay_draws_per_sec,
                higher_is_better: true,
            },
            GateCheck {
                file: "BENCH_scenario.json",
                field: "baseline_epoch_ms",
                now: report.baseline_epoch_ms,
                higher_is_better: false,
            },
        ])?;
    } else {
        let root = workspace_root()?;
        let path = root.join("BENCH_scenario.json");
        let json = serde_json::to_string_pretty(&report)
            .map_err(|e| LabError::Parse(e.to_string()))?;
        std::fs::write(&path, json + "\n")?;
        diskobs::logger::info(&format!("wrote {}", path.display()));
    }
    Ok(report)
}

/// What the surrogate-screening benchmark measured: the per-candidate
/// wall cost of the capacity planner's stage one (a fitted
/// [`disksurrogate::GridSurrogate`] screen) against its stage two (a
/// full fleet simulation), both timed on this host. `lab bench
/// surrogate` writes this to `BENCH_surrogate.json` at the workspace
/// root.
#[derive(Debug, Serialize)]
pub struct SurrogateBenchReport {
    /// True when the quick (smoke-test) iteration counts were used.
    pub quick: bool,
    /// Where/when this run happened.
    pub provenance: Provenance,
    /// Grid points in the training sweep (one full fleet sim each).
    pub training_points: usize,
    /// Wall time of the parallel training sweep, ms.
    pub train_sweep_ms: f64,
    /// Wall time of the one-off grid fit, ms.
    pub fit_ms: f64,
    /// Full fleet simulations timed for the per-candidate baseline.
    pub full_sims_timed: usize,
    /// Measured mean wall time of one full fleet simulation — what
    /// verifying a candidate without the surrogate costs, ms.
    pub full_sim_ms_per_candidate: f64,
    /// Candidate screenings in the timing loop (slate size times laps).
    pub candidates_screened: usize,
    /// Measured mean cost of screening one candidate — predicting
    /// every output and checking envelope/latency feasibility — ns.
    pub screen_ns_per_candidate: f64,
    /// `full_sim_ms_per_candidate` over the per-candidate screening
    /// cost. Measured on this host, never projected; a full (non
    /// `--quick`) run fails below 100x.
    pub screening_speedup: f64,
}

/// Times the two stages of the surrogate-accelerated capacity planner
/// against each other on the same candidate shapes the `capacity_plan`
/// experiment walks.
pub fn surrogate_bench(quick: bool) -> Result<SurrogateBenchReport, LabError> {
    use crate::experiments::capacity_plan::P95_LIMIT_MS;
    use crate::sweep::SweepSpec;
    use disksurrogate::{screen, Constraint, GridSurrogate};
    let fail = |e: &dyn std::fmt::Display| LabError::Experiment(format!("surrogate bench: {e}"));
    let (requests, sims_timed, screen_laps) = if quick { (300, 2, 50) } else { (2_000, 8, 500) };

    // The training sweep: the quick-scale capacity-plan grid for one
    // preset, every point a full fleet simulation.
    let spec = SweepSpec {
        preset: "oltp".into(),
        rows: 1,
        requests,
        seed: 23,
        rates: vec![200.0, 400.0],
        per_rack: vec![4.0, 16.0],
        racks_per_row: vec![2.0],
        inlets_c: vec![28.0, 32.0],
        dtm: vec![0.0, 1.0],
    };
    let grid = spec.grid();
    let axes = spec.axes()?;
    let start = Instant::now();
    let samples = spec.run(&grid, crate::default_parallelism())?;
    let train_s = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let model = GridSurrogate::fit(axes, &samples).map_err(|e| fail(&e))?;
    let fit_s = start.elapsed().as_secs_f64();

    // Stage-two baseline: serial full sims at points spread across the
    // grid, so the mean covers cool/hot and DTM-on/off costs alike.
    let step = (grid.len() / sims_timed).max(1);
    let timed: Vec<&Vec<f64>> = grid.iter().step_by(step).take(sims_timed).collect();
    let start = Instant::now();
    for coords in &timed {
        black_box(spec.evaluate(coords)?);
    }
    let sim_s = start.elapsed().as_secs_f64();

    // Stage-one cost: screen the dense slate the planner builds —
    // every integral bay count between the sweep's per-rack nodes —
    // against the same envelope and latency constraints it applies.
    let constraints = [
        Constraint {
            output: "peak_air_c".into(),
            max: diskthermal::THERMAL_ENVELOPE.get(),
        },
        Constraint {
            output: "p95_ms".into(),
            max: P95_LIMIT_MS,
        },
    ];
    let mut candidates = Vec::new();
    for &rate in &spec.rates {
        for bays in 4..=16u32 {
            for &inlet in &spec.inlets_c {
                for &dtm in &spec.dtm {
                    candidates.push(vec![rate, f64::from(bays), 2.0, inlet, dtm]);
                }
            }
        }
    }
    let start = Instant::now();
    let mut feasible = 0usize;
    for _ in 0..screen_laps {
        let screened = screen(&model, &candidates, &constraints).map_err(|e| fail(&e))?;
        feasible += screened.iter().filter(|s| s.feasible).count();
    }
    let screen_s = start.elapsed().as_secs_f64().max(1e-9);
    black_box(feasible);

    let candidates_screened = candidates.len() * screen_laps;
    let full_sim_ms = sim_s * 1e3 / timed.len() as f64;
    let screen_ns = screen_s * 1e9 / candidates_screened as f64;
    let speedup = full_sim_ms * 1e6 / screen_ns;
    // Quick mode shrinks the sims to smoke-test size, which shrinks
    // the ratio with them; the floor is enforced where the artifact is
    // produced.
    if !quick && speedup < 100.0 {
        return Err(fail(&format!(
            "measured screening speedup {speedup:.1}x is below the 100x floor"
        )));
    }

    Ok(SurrogateBenchReport {
        quick,
        provenance: Provenance::collect(),
        training_points: grid.len(),
        train_sweep_ms: train_s * 1e3,
        fit_ms: fit_s * 1e3,
        full_sims_timed: timed.len(),
        full_sim_ms_per_candidate: full_sim_ms,
        candidates_screened,
        screen_ns_per_candidate: screen_ns,
        screening_speedup: speedup,
    })
}

/// `lab bench surrogate` — run only the surrogate suite, print it, and
/// (full mode) write `BENCH_surrogate.json` at the workspace root.
pub fn run_surrogate_bench(quick: bool) -> Result<SurrogateBenchReport, LabError> {
    let report = surrogate_bench(quick)?;
    println!("surrogate screening (capacity-plan knob grid, OLTP preset):");
    println!(
        "  training sweep:              {:>12.1} ms  ({} full sims)",
        report.train_sweep_ms, report.training_points
    );
    println!("  grid fit:                    {:>12.2} ms", report.fit_ms);
    println!(
        "  full sim per candidate:      {:>12.2} ms  (mean of {})",
        report.full_sim_ms_per_candidate, report.full_sims_timed
    );
    println!(
        "  surrogate screen:            {:>12.0} ns/candidate  ({} screenings)",
        report.screen_ns_per_candidate, report.candidates_screened
    );
    println!(
        "  screening speedup:           {:>12.0}x  (measured; floor 100x)",
        report.screening_speedup
    );
    if quick {
        // The speedup ratio itself shrinks with the quick sims, so the
        // gate pins the scale-free side: the per-candidate screening
        // cost against the same slate the committed run timed.
        gate_against_baselines(&[GateCheck {
            file: "BENCH_surrogate.json",
            field: "screen_ns_per_candidate",
            now: report.screen_ns_per_candidate,
            higher_is_better: false,
        }])?;
    } else {
        let root = workspace_root()?;
        let path = root.join("BENCH_surrogate.json");
        let json = serde_json::to_string_pretty(&report)
            .map_err(|e| LabError::Parse(e.to_string()))?;
        std::fs::write(&path, json + "\n")?;
        diskobs::logger::info(&format!("wrote {}", path.display()));
    }
    Ok(report)
}

pub fn run_bench(quick: bool) -> Result<BenchReport, LabError> {
    let (kernel_steps, cold_solves, memo_solves) = if quick {
        (20_000, 2_000, 20_000)
    } else {
        (200_000, 20_000, 200_000)
    };

    let model = ThermalModel::new(DriveThermalSpec::cheetah_15k3());
    let op = OperatingPoint::seeking(Rpm::new(15_000.0));

    diskobs::logger::info(&format!(
        "lab bench ({} mode): {} integrator steps, {} cold + {} memoized steady solves",
        if quick { "quick" } else { "full" },
        kernel_steps,
        cold_solves,
        memo_solves
    ));

    let be_prepr = be_prepr_steps_per_sec(&model, op, kernel_steps);
    let be_naive = be_steps_per_sec(&model, op, kernel_steps, false);
    let be_cached = be_steps_per_sec(&model, op, kernel_steps, true);
    let fe = fe_steps_per_sec(&model, op, kernel_steps);
    let steady_cold = steady_solves_per_sec(&model, cold_solves, true);
    let steady_memo = steady_solves_per_sec(&model, memo_solves, false);
    let figure5_ms = experiment_wall_ms("figure5")?;
    let figure7_ms = experiment_wall_ms("figure7")?;

    let report = BenchReport {
        quick,
        provenance: Provenance::collect(),
        be_prepr_steps_per_sec: be_prepr,
        be_naive_steps_per_sec: be_naive,
        be_cached_steps_per_sec: be_cached,
        cached_speedup: be_cached / be_prepr,
        fe_steps_per_sec: fe,
        steady_cold_solves_per_sec: steady_cold,
        steady_memoized_solves_per_sec: steady_memo,
        figure5_wall_ms: figure5_ms,
        figure7_wall_ms: figure7_ms,
    };

    println!("thermal kernel (dt = {DT} s, constant operating point):");
    println!(
        "  backward Euler, pre-rewrite (heap + eliminate): {:>12.0} steps/s",
        report.be_prepr_steps_per_sec
    );
    println!(
        "  backward Euler, stack arrays, factor per step:  {:>12.0} steps/s",
        report.be_naive_steps_per_sec
    );
    println!(
        "  backward Euler, cached factorization:           {:>12.0} steps/s  ({:.1}x vs pre-rewrite)",
        report.be_cached_steps_per_sec, report.cached_speedup
    );
    println!(
        "  forward Euler:                                  {:>12.0} steps/s",
        report.fe_steps_per_sec
    );
    println!("steady-state solves:");
    println!(
        "  cold (distinct operating points):          {:>12.0} solves/s",
        report.steady_cold_solves_per_sec
    );
    println!(
        "  memoized (repeated operating point):       {:>12.0} solves/s",
        report.steady_memoized_solves_per_sec
    );
    println!("end-to-end experiments (single-threaded, no cache):");
    println!("  figure5: {:>8.1} ms", report.figure5_wall_ms);
    println!("  figure7: {:>8.1} ms", report.figure7_wall_ms);

    // The sim and obs benches diff against *committed* baselines, so
    // both run before the write block below refreshes the files.
    let sim = sim_bench(quick)?;
    println!("storage event core (single shard, figure-scale trace):");
    match (sim.windows_speedup, sim.baseline_fleet_serial_windows_per_sec) {
        (Some(speedup), Some(base)) => println!(
            "  window loop:                 {:>12.0} windows/s  ({:.2}x vs committed fleet serial {:.0})",
            sim.windows_per_sec, speedup, base
        ),
        _ => println!(
            "  window loop (no baseline):   {:>12.0} windows/s",
            sim.windows_per_sec
        ),
    }
    println!(
        "  event throughput:            {:>12.0} events/s",
        sim.events_per_sec
    );
    println!(
        "  calendar queue hold churn:   {:>12.0} ops/s  ({:.2}x vs BinaryHeap {:.0})",
        sim.calendar_hold_ops_per_sec,
        sim.calendar_vs_heap_speedup,
        sim.heap_hold_ops_per_sec
    );

    let fleet = fleet_bench(quick)?;
    println!(
        "fleet event loop ({FLEET_BENCH_ENCLOSURES} drives, serial airflow):"
    );
    let rack_total = fleet.serial_run_parallel_phase_ms + fleet.serial_run_serial_phase_ms;
    println!(
        "  1 shard:                     {:>12.0} drive-windows/s  ({:.1} ms sweep + {:.1} ms sync, {:.0}% serial)",
        fleet.serial_windows_per_sec,
        fleet.serial_run_parallel_phase_ms,
        fleet.serial_run_serial_phase_ms,
        if rack_total > 0.0 {
            fleet.serial_run_serial_phase_ms / rack_total * 100.0
        } else {
            0.0
        }
    );
    println!(
        "  {} shards:                    {:>12.0} drive-windows/s  ({:.1}x; {:.1} ms sweep + {:.1} ms sync)",
        fleet.shards,
        fleet.sharded_windows_per_sec,
        fleet.sharded_windows_per_sec / fleet.serial_windows_per_sec,
        fleet.sharded_run_parallel_phase_ms,
        fleet.sharded_run_serial_phase_ms
    );
    println!(
        "fleet shard sweep ({} drives, hierarchical hall airflow, thermal-aware routing):",
        fleet.hall_enclosures
    );
    for row in &fleet.shard_sweep {
        println!(
            "  {} shard(s):                  {:>12.0} drive-windows/s  ({:.2}x wall; {:.1} ms parallel + {:.1} ms serial)",
            row.shards,
            row.windows_per_sec,
            row.wall_speedup_vs_serial,
            row.parallel_phase_ms,
            row.serial_phase_ms
        );
    }
    println!(
        "  serial fraction:             {:>12.2} %  (Amdahl cap at 8 shards: {:.1}x)",
        fleet.serial_fraction * 100.0,
        fleet.amdahl_speedup_at_8
    );
    println!(
        "  shard speedup at 8:          {:>12.1} x  ({})",
        fleet.shard_speedup, fleet.shard_speedup_basis
    );
    println!(
        "  fleet_routing experiment:    {:>12.1} ms",
        fleet.fleet_routing_wall_ms
    );

    // Measure the observability tax *before* refreshing the baselines,
    // so the deltas below compare against the committed numbers.
    let mut obs = obs_bench(quick)?;
    if obs.null_noise_pct >= 2.0 {
        // A burst of host interference can push even the paired
        // statistic past the margin; one remeasure separates transient
        // noise from a genuine regression. Keep the quieter run.
        diskobs::logger::info(&format!(
            "null-sink noise {:.2}% above margin; remeasuring once",
            obs.null_noise_pct
        ));
        let again = obs_bench(quick)?;
        if again.null_noise_pct < obs.null_noise_pct {
            obs = again;
        }
    }
    println!("observability overhead (null sink vs recording, 1 shard):");
    println!(
        "  fleet kernel, null sink:     {:>12.2} ms  (repeat {:.2} ms, noise {:.2}%)",
        obs.fleet_null_wall_ms, obs.fleet_null_repeat_wall_ms, obs.null_noise_pct
    );
    println!(
        "  fleet kernel, recording:     {:>12.2} ms  ({:+.2}%, {} events)",
        obs.fleet_recording_wall_ms, obs.recording_overhead_pct, obs.recorded_events
    );
    match (obs.be_cached_delta_pct, obs.baseline_be_cached_steps_per_sec) {
        (Some(delta), Some(base)) => println!(
            "  be_cached vs baseline:       {:>12.0} steps/s  ({:+.2}% vs {:.0})",
            obs.be_cached_steps_per_sec, delta, base
        ),
        _ => println!(
            "  be_cached (no baseline):     {:>12.0} steps/s",
            obs.be_cached_steps_per_sec
        ),
    }
    if let (Some(now), Some(delta), Some(base)) = (
        obs.fleet_routing_wall_ms,
        obs.fleet_routing_delta_pct,
        obs.baseline_fleet_routing_wall_ms,
    ) {
        println!(
            "  fleet_routing vs baseline:   {:>12.1} ms  ({:+.2}% vs {:.1} ms)",
            now, delta, base
        );
    }

    let twin = twin_bench(quick)?;
    println!("digital twin (4 drives, OLTP stream):");
    println!(
        "  checkpoint encode:           {:>12.0} states/s  ({:.1} MB/s, {} bytes/state)",
        twin.checkpoint_encode_per_sec, twin.checkpoint_encode_mb_per_sec, twin.state_bytes
    );
    println!(
        "  checkpoint restore:          {:>12.0} states/s",
        twin.checkpoint_restore_per_sec
    );
    println!(
        "  fork latency:                {:>12.3} ms",
        twin.fork_latency_ms
    );
    println!(
        "  what-if (2 forks, {} epochs): {:>11.1} ms",
        if quick { 2 } else { 8 },
        twin.whatif_wall_ms
    );

    if quick {
        // The in-process bound `--quick` asserts: two interleaved
        // null-sink measurements of the same kernel must agree to
        // within 4%. Both sides run in this process moments apart, so
        // the check is machine-independent; the margin sits above the
        // paired-CPU-time noise floor observed on shared containers
        // (~2.5%), and the committed BENCH_obs.json pins the tighter
        // <2% before/after deltas on the acceptance metrics.
        if obs.null_noise_pct >= 4.0 {
            return Err(LabError::Experiment(format!(
                "obs overhead bound violated: null-sink noise {:.2}% >= 4% \
                 ({:.2} ms vs {:.2} ms)",
                obs.null_noise_pct, obs.fleet_null_wall_ms, obs.fleet_null_repeat_wall_ms
            )));
        }
        println!("obs overhead bound holds: null-sink noise {:.2}% < 4%", obs.null_noise_pct);
        // The shard-scaling bound `--quick` asserts: the hall workload's
        // epoch boundary must stay almost entirely parallel. The
        // committed BENCH_fleet.json pins the tighter < 3%; the gate
        // doubles it so host noise on a busy CI box costs a rerun, not
        // a false regression.
        if fleet.serial_fraction >= 0.06 {
            return Err(LabError::Experiment(format!(
                "fleet shard-scaling bound violated: serial fraction {:.2}% >= 6% \
                 ({:.1} ms serial vs {:.1} ms parallel on the hall workload)",
                fleet.serial_fraction * 100.0,
                fleet.shard_sweep[0].serial_phase_ms,
                fleet.shard_sweep[0].parallel_phase_ms
            )));
        }
        println!(
            "fleet shard-scaling bound holds: serial fraction {:.2}% < 6%",
            fleet.serial_fraction * 100.0
        );
        // The cross-run gate: this quick run's rates against the
        // committed baselines. Scale-dependent numbers stay out (quick
        // shrinks them by design); the hall shard speedup only enters
        // when both sides are wall-clock measurements — on a small
        // host the committed number may be an Amdahl projection, and a
        // projection diffed against a measurement gates physics, not
        // code.
        let mut checks = vec![
            GateCheck {
                file: "BENCH_thermal.json",
                field: "be_cached_steps_per_sec",
                now: report.be_cached_steps_per_sec,
                higher_is_better: true,
            },
            GateCheck {
                file: "BENCH_thermal.json",
                field: "fe_steps_per_sec",
                now: report.fe_steps_per_sec,
                higher_is_better: true,
            },
            GateCheck {
                file: "BENCH_thermal.json",
                field: "steady_memoized_solves_per_sec",
                now: report.steady_memoized_solves_per_sec,
                higher_is_better: true,
            },
            GateCheck {
                file: "BENCH_thermal.json",
                field: "figure5_wall_ms",
                now: report.figure5_wall_ms,
                higher_is_better: false,
            },
            GateCheck {
                file: "BENCH_sim.json",
                field: "windows_per_sec",
                now: sim.windows_per_sec,
                higher_is_better: true,
            },
            // No calendar-vs-heap check: the calendar queue spends its
            // first few hundred thousand holds in a bucket-resize
            // transient, so quick op counts measure the transient, not
            // the steady state the committed number records (measured
            // ratio climbs 0.15 -> 1.46 between 50k and 2M holds).
            // The window loop above churns the same queue on the real
            // event path and is scale-free per window.
            GateCheck {
                file: "BENCH_fleet.json",
                field: "serial_windows_per_sec",
                now: fleet.serial_windows_per_sec,
                higher_is_better: true,
            },
            GateCheck {
                file: "BENCH_twin.json",
                field: "checkpoint_encode_per_sec",
                now: twin.checkpoint_encode_per_sec,
                higher_is_better: true,
            },
            GateCheck {
                file: "BENCH_twin.json",
                field: "checkpoint_restore_per_sec",
                now: twin.checkpoint_restore_per_sec,
                higher_is_better: true,
            },
        ];
        let committed_basis = baseline_str_field("BENCH_fleet.json", "shard_speedup_basis");
        if fleet.shard_speedup_basis == "measured"
            && committed_basis.as_deref() == Some("measured")
        {
            checks.push(GateCheck {
                file: "BENCH_fleet.json",
                field: "shard_speedup",
                now: fleet.shard_speedup,
                higher_is_better: true,
            });
        }
        gate_against_baselines(&checks)?;
    } else {
        let root = workspace_root()?;
        for (name, json) in [
            ("BENCH_thermal.json", serde_json::to_string_pretty(&report)),
            ("BENCH_sim.json", serde_json::to_string_pretty(&sim)),
            ("BENCH_fleet.json", serde_json::to_string_pretty(&fleet)),
            ("BENCH_obs.json", serde_json::to_string_pretty(&obs)),
            ("BENCH_twin.json", serde_json::to_string_pretty(&twin)),
        ] {
            let path = root.join(name);
            let json = json.map_err(|e| LabError::Parse(e.to_string()))?;
            std::fs::write(&path, json + "\n")?;
            diskobs::logger::info(&format!("wrote {}", path.display()));
        }
    }

    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_benchmarks_report_positive_rates() {
        let model = ThermalModel::new(DriveThermalSpec::cheetah_15k3());
        let op = OperatingPoint::seeking(Rpm::new(15_000.0));
        assert!(be_steps_per_sec(&model, op, 500, false) > 0.0);
        assert!(be_steps_per_sec(&model, op, 500, true) > 0.0);
        assert!(fe_steps_per_sec(&model, op, 500) > 0.0);
        assert!(steady_solves_per_sec(&model, 50, true) > 0.0);
        assert!(steady_solves_per_sec(&model, 50, false) > 0.0);
    }

    #[test]
    fn fleet_kernel_benchmark_reports_positive_rates_and_phases() {
        let (serial, profile) = fleet_windows_per_sec(1, 200).unwrap();
        assert!(serial > 0.0);
        assert!(profile.epochs > 0);
        assert!(profile.parallel_ms > 0.0);
        assert!((0.0..=1.0).contains(&profile.serial_fraction()));
        let (sharded, _) = fleet_windows_per_sec(4, 200).unwrap();
        assert!(sharded > 0.0);
    }

    #[test]
    fn sim_window_loop_reports_positive_rates() {
        let (wps, eps) = sim_windows_per_sec(200, 1).unwrap();
        assert!(wps > 0.0);
        assert!(eps > 0.0);
    }

    #[test]
    fn queue_hold_churn_is_deterministic_and_positive() {
        assert!(queue_hold_ops_per_sec(2_000, true) > 0.0);
        assert!(queue_hold_ops_per_sec(2_000, false) > 0.0);
    }

    #[test]
    fn twin_bench_reports_positive_rates() {
        let report = twin_bench(true).unwrap();
        assert!(report.state_bytes > 0);
        assert!(report.checkpoint_encode_per_sec > 0.0);
        assert!(report.checkpoint_encode_mb_per_sec > 0.0);
        assert!(report.checkpoint_restore_per_sec > 0.0);
        assert!(report.fork_latency_ms > 0.0);
        assert!(report.whatif_wall_ms > 0.0);
    }

    #[test]
    fn scenario_bench_reports_positive_rates() {
        let report = scenario_bench(true).unwrap();
        assert!(report.replay_draws_per_sec > 0.0);
        assert!(report.baseline_epoch_ms > 0.0);
        assert!(report.storm_epoch_ms > 0.0);
    }

    #[test]
    fn civil_from_days_matches_known_dates() {
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(civil_from_days(19_723), (2024, 1, 1));
        // 2024 was a leap year: Feb 29 exists, Mar 1 follows.
        assert_eq!(civil_from_days(19_723 + 59), (2024, 2, 29));
        assert_eq!(civil_from_days(19_723 + 60), (2024, 3, 1));
        assert_eq!(civil_from_days(-1), (1969, 12, 31));
    }

    #[test]
    fn provenance_is_populated() {
        let p = Provenance::collect();
        assert!(p.host_parallelism >= 1);
        assert_eq!(p.date_utc.len(), 10);
        assert!(!p.git_commit.is_empty());
    }

    #[test]
    fn recording_run_captures_events_and_null_run_is_timed() {
        let mut null = diskobs::Sink::null();
        assert!(fleet_wall_ms_with(150, &mut null).unwrap() > 0.0);
        let mut buffer = diskobs::Sink::buffer();
        assert!(fleet_wall_ms_with(150, &mut buffer).unwrap() > 0.0);
        let events = buffer.drain();
        assert!(events.len() > 150, "expected a rich stream, got {}", events.len());
    }
}

