//! `disklab` — experiment orchestration for the thermodisk workspace.
//!
//! Every table and figure the paper reproduction regenerates is a
//! registered [`Experiment`]. The [`Engine`] runs any subset across a
//! work-stealing thread pool, serves repeat runs from a
//! content-addressed cache under `results/.cache/`, and records what
//! happened in `results/manifest.json`. The `lab` binary is the single
//! CLI front end; the old per-experiment binaries in the `bench` crate
//! are thin wrappers over [`cli`].

pub mod bench;
pub mod cli;
pub mod digest;
pub mod engine;
pub mod error;
pub mod experiment;
pub mod experiments;
pub mod manifest;
pub mod registry;
pub mod sweep;
pub mod text;
pub mod trace;
pub mod twin_cli;

pub use engine::{default_parallelism, parallel_map, Engine, RunSummary};
pub use error::LabError;
pub use experiment::{Experiment, RunOutput, Scale};
pub use manifest::{Manifest, ManifestEntry};
pub use registry::{by_name, names, registry};
pub use text::{ascii_plot, results_dir, rule, save_json};
pub use trace::{run_trace, trace_names, TraceOutcome};
