//! The `lab` CLI: run any or all registered experiments in parallel,
//! with result caching and a run manifest.
//!
//! ```text
//! cargo run --release --bin lab -- all --threads 8
//! cargo run --release --bin lab -- figure2
//! cargo run --release --bin lab -- list
//! ```

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match disklab::cli::parse_args(args) {
        Ok(opts) => disklab::cli::run(&opts),
        Err(message) => {
            eprintln!("{message}");
            2
        }
    };
    std::process::exit(code);
}
