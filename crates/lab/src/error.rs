//! The error type shared by the experiment engine and its callers.

use std::fmt;
use std::io;

/// Anything that can go wrong while orchestrating experiments.
#[derive(Debug)]
pub enum LabError {
    /// Filesystem failure reading or writing results/cache files.
    Io(io::Error),
    /// A cache or manifest file held JSON we could not interpret.
    Parse(String),
    /// The experiment itself failed (model rejected a design, simulation
    /// error, ...).
    Experiment(String),
}

impl fmt::Display for LabError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LabError::Io(e) => write!(f, "i/o error: {e}"),
            LabError::Parse(msg) => write!(f, "malformed stored JSON: {msg}"),
            LabError::Experiment(msg) => write!(f, "experiment failed: {msg}"),
        }
    }
}

impl std::error::Error for LabError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LabError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for LabError {
    fn from(e: io::Error) -> Self {
        LabError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_carry_context() {
        let e = LabError::Experiment("no feasible rpm".into());
        assert!(e.to_string().contains("no feasible rpm"));
        let io_err: LabError = io::Error::other("disk full").into();
        assert!(io_err.to_string().contains("disk full"));
    }
}
