//! The parallel experiment engine: a work-stealing scheduler over
//! `std::thread`, a content-addressed result cache, and the run
//! manifest.
//!
//! The scheduler primitive itself ([`parallel_map`] and friends) lives
//! in `disksim::par` so the fleet simulator can shard its event loop
//! through the same discipline; this module re-exports it under its
//! historical `disklab::engine` path.

use crate::error::LabError;
use crate::experiment::{Experiment, RunOutput};
use crate::manifest::{Manifest, ManifestEntry};
use serde_json::{Map, Value};
use std::collections::VecDeque;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::mpsc;
use std::sync::Mutex;
use std::thread;
use std::time::Instant;

pub use disksim::par::{default_parallelism, next_job, parallel_map};

/// Where results land and how the run is executed.
pub struct Engine {
    results_dir: PathBuf,
    cache_dir: PathBuf,
    threads: usize,
    use_cache: bool,
}

/// Everything one engine run produced, beyond the files on disk.
pub struct RunSummary {
    /// The manifest, as written to `results/manifest.json`.
    pub manifest: Manifest,
    /// `(name, text report)` pairs in manifest (name) order.
    pub reports: Vec<(String, String)>,
}

impl Engine {
    /// An engine writing into the workspace `results/` directory.
    pub fn workspace() -> std::io::Result<Engine> {
        Ok(Engine::at(crate::text::results_dir()?))
    }

    /// An engine writing into an arbitrary results directory, with the
    /// cache alongside under `.cache/`.
    pub fn at(results_dir: impl Into<PathBuf>) -> Engine {
        let results_dir = results_dir.into();
        let cache_dir = results_dir.join(".cache");
        Engine {
            results_dir,
            cache_dir,
            threads: 1,
            use_cache: true,
        }
    }

    /// Sets the worker-thread count (clamped to at least one).
    pub fn threads(mut self, threads: usize) -> Engine {
        self.threads = threads.max(1);
        self
    }

    /// Enables or disables the content-addressed result cache.
    pub fn use_cache(mut self, use_cache: bool) -> Engine {
        self.use_cache = use_cache;
        self
    }

    /// The directory results are written to.
    pub fn results_path(&self) -> &Path {
        &self.results_dir
    }

    /// Runs every experiment across the worker pool, writes all result
    /// files plus `manifest.json`, and returns the summary.
    ///
    /// All experiments are attempted even if one fails; the first
    /// failure (in submission order) is then reported.
    pub fn run(&self, experiments: Vec<Box<dyn Experiment>>) -> Result<RunSummary, LabError> {
        fs::create_dir_all(&self.results_dir)?;
        if self.use_cache {
            fs::create_dir_all(&self.cache_dir)?;
        }
        let started = Instant::now();

        let workers = self.threads.clamp(1, experiments.len().max(1));
        // One deque per worker; idle workers steal from the back of
        // their peers' deques.
        let queues: Vec<Mutex<VecDeque<usize>>> =
            (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        for i in 0..experiments.len() {
            queues[i % workers].lock().expect("queue lock").push_back(i);
        }

        let (tx, rx) = mpsc::channel();
        let experiments = &experiments;
        let queues = &queues;
        thread::scope(|scope| {
            for worker in 0..workers {
                let tx = tx.clone();
                scope.spawn(move || {
                    while let Some(i) = next_job(queues, worker) {
                        let outcome = self.execute(experiments[i].as_ref());
                        if tx.send((i, outcome)).is_err() {
                            break;
                        }
                    }
                });
            }
        });
        drop(tx);

        let mut slots: Vec<Option<Result<(ManifestEntry, String), LabError>>> =
            (0..experiments.len()).map(|_| None).collect();
        for (i, outcome) in rx {
            slots[i] = Some(outcome);
        }

        let mut completed = Vec::new();
        for (i, slot) in slots.into_iter().enumerate() {
            let name = experiments[i].name();
            let outcome =
                slot.ok_or_else(|| LabError::Experiment(format!("{name}: worker vanished")))?;
            completed.push(outcome?);
        }
        completed.sort_by(|(a, _), (b, _)| a.name.cmp(&b.name));

        let (entries, reports): (Vec<ManifestEntry>, Vec<String>) = completed.into_iter().unzip();
        let names: Vec<String> = entries.iter().map(|e| e.name.clone()).collect();

        let manifest = Manifest {
            schema: 2,
            crate_version: env!("CARGO_PKG_VERSION").to_string(),
            threads: workers,
            total_wall_ms: started.elapsed().as_secs_f64() * 1e3,
            experiments: entries,
        };
        let manifest_json =
            serde_json::to_string_pretty(&manifest).map_err(|e| LabError::Parse(e.to_string()))?;
        fs::write(self.results_dir.join("manifest.json"), manifest_json)?;

        Ok(RunSummary {
            manifest,
            reports: names.into_iter().zip(reports).collect(),
        })
    }

    /// Runs one experiment: cache replay when possible, fresh compute
    /// otherwise. Returns the manifest entry plus the text report. Each
    /// stage is timed into the entry's `stages` for `lab profile`.
    fn execute(&self, exp: &dyn Experiment) -> Result<(ManifestEntry, String), LabError> {
        let digest = exp.config_digest();
        let started = Instant::now();
        let mut spans = diskobs::SpanSet::new();
        let cache_path = self
            .cache_dir
            .join(format!("{}-{digest}.json", exp.name()));

        if self.use_cache && cache_path.exists() {
            // A corrupt or stale cache file is not fatal — recompute.
            if let Ok(output) = spans.time("cache_probe", || read_cached(&cache_path)) {
                let outputs = spans.time("write_outputs", || {
                    self.write_outputs(exp.name(), &output)
                })?;
                let entry = ManifestEntry {
                    name: exp.name().to_string(),
                    digest,
                    cache: "hit".to_string(),
                    wall_ms: started.elapsed().as_secs_f64() * 1e3,
                    stages: spans.into_spans(),
                    outputs,
                };
                return Ok((entry, output.text));
            }
        }

        let output = spans.time("compute", || exp.run())?;
        let outputs = spans.time("write_outputs", || self.write_outputs(exp.name(), &output))?;
        if self.use_cache {
            spans.time("cache_store", || {
                fs::write(&cache_path, render_cached(exp.name(), &digest, &output))
            })?;
        }
        let entry = ManifestEntry {
            name: exp.name().to_string(),
            digest,
            cache: "miss".to_string(),
            wall_ms: started.elapsed().as_secs_f64() * 1e3,
            stages: spans.into_spans(),
            outputs,
        };
        Ok((entry, output.text))
    }

    /// Writes `<stem>.json` per payload, each side file verbatim, and
    /// `<name>.txt`, returning the file names written.
    fn write_outputs(&self, name: &str, output: &RunOutput) -> Result<Vec<String>, LabError> {
        let mut written = Vec::new();
        for (stem, payload) in &output.json {
            let file = format!("{stem}.json");
            let pretty = serde_json::to_string_pretty(payload)
                .map_err(|e| LabError::Parse(e.to_string()))?;
            fs::write(self.results_dir.join(&file), pretty)?;
            written.push(file);
        }
        for (file, contents) in &output.files {
            fs::write(self.results_dir.join(file), contents)?;
            written.push(file.clone());
        }
        let text_file = format!("{name}.txt");
        fs::write(self.results_dir.join(&text_file), &output.text)?;
        written.push(text_file);
        Ok(written)
    }
}

/// The cache-file document for one computed experiment.
fn render_cached(name: &str, digest: &str, output: &RunOutput) -> String {
    let mut outputs = Map::new();
    for (stem, payload) in &output.json {
        outputs.insert(stem.clone(), payload.clone());
    }
    let mut files = Map::new();
    for (file, contents) in &output.files {
        files.insert(file.clone(), Value::String(contents.clone()));
    }
    let mut doc = Map::new();
    doc.insert("name", Value::String(name.to_string()));
    doc.insert("digest", Value::String(digest.to_string()));
    doc.insert("text", Value::String(output.text.clone()));
    doc.insert("outputs", Value::Object(outputs));
    doc.insert("files", Value::Object(files));
    serde_json::to_string_pretty(&Value::Object(doc)).unwrap_or_default()
}

/// Reads a cache file back into the output it recorded.
fn read_cached(path: &Path) -> Result<RunOutput, LabError> {
    let raw = fs::read_to_string(path)?;
    let doc: Value = serde_json::from_str(&raw).map_err(|e| LabError::Parse(e.to_string()))?;
    let text = doc
        .get("text")
        .and_then(Value::as_str)
        .ok_or_else(|| LabError::Parse("cache entry missing text".into()))?
        .to_string();
    let outputs = doc
        .get("outputs")
        .and_then(Value::as_object)
        .ok_or_else(|| LabError::Parse("cache entry missing outputs".into()))?;
    let json = outputs
        .iter()
        .map(|(stem, payload)| (stem.clone(), payload.clone()))
        .collect();
    // Cache documents written before side files existed have no
    // `files` key; treat them as having none.
    let files = doc
        .get("files")
        .and_then(Value::as_object)
        .map(|m| {
            m.iter()
                .filter_map(|(f, c)| Some((f.clone(), c.as_str()?.to_string())))
                .collect()
        })
        .unwrap_or_default();
    Ok(RunOutput { json, files, text })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::config_object;
    use serde::Serialize as _;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    struct Counting {
        id: u64,
        runs: Arc<AtomicUsize>,
    }

    impl Counting {
        fn boxed(id: u64) -> (Box<dyn Experiment>, Arc<AtomicUsize>) {
            let runs = Arc::new(AtomicUsize::new(0));
            (Box::new(Counting { id, runs: runs.clone() }), runs)
        }
    }

    impl Experiment for Counting {
        fn name(&self) -> &'static str {
            "counting"
        }
        fn config(&self) -> Value {
            config_object(vec![("id", self.id.to_value())])
        }
        fn run(&self) -> Result<RunOutput, LabError> {
            self.runs.fetch_add(1, Ordering::SeqCst);
            Ok(RunOutput::single(
                "counting",
                vec![self.id, 2, 3].to_value(),
                format!("id {}\n", self.id),
            ))
        }
    }

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "disklab-engine-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn second_run_is_a_cache_hit_with_identical_bytes() {
        let dir = scratch("hit");
        let engine = Engine::at(&dir).threads(2);

        let (exp, runs) = Counting::boxed(9);
        let first = engine.run(vec![exp]).unwrap();
        assert_eq!(first.manifest.misses(), 1);
        let bytes1 = fs::read(dir.join("counting.json")).unwrap();

        let (exp, _) = Counting::boxed(9);
        let second = engine.run(vec![exp]).unwrap();
        assert_eq!(second.manifest.hits(), 1);
        assert_eq!(bytes1, fs::read(dir.join("counting.json")).unwrap());
        assert_eq!(runs.load(Ordering::SeqCst), 1, "hit must not recompute");
        assert_eq!(second.reports[0].1, "id 9\n");

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn disabling_the_cache_recomputes() {
        let dir = scratch("nocache");
        let engine = Engine::at(&dir).use_cache(false);
        let (first, runs_a) = Counting::boxed(5);
        engine.run(vec![first]).unwrap();
        let (second, runs_b) = Counting::boxed(5);
        let mid = engine.run(vec![second]).unwrap();
        assert_eq!(mid.manifest.misses(), 1);
        assert_eq!(runs_a.load(Ordering::SeqCst) + runs_b.load(Ordering::SeqCst), 2);
        assert!(!dir.join(".cache").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_lands_next_to_results() {
        let dir = scratch("manifest");
        let engine = Engine::at(&dir);
        let (exp, _) = Counting::boxed(1);
        let summary = engine.run(vec![exp]).unwrap();
        assert!(dir.join("manifest.json").is_file());
        assert_eq!(summary.manifest.experiments[0].outputs, vec![
            "counting.json".to_string(),
            "counting.txt".to_string()
        ]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reexported_parallel_map_matches_serial() {
        // The primitive's own tests live in `disksim::par`; this pins
        // the `disklab::engine` re-export to the same behavior.
        let serial = parallel_map((0..32).collect::<Vec<i64>>(), 1, |x| x * 3);
        let threaded = parallel_map((0..32).collect::<Vec<i64>>(), 8, |x| x * 3);
        assert_eq!(serial, threaded);
    }
}
