//! The experiment registry: every table/figure regenerator, by name.

use crate::experiment::{Experiment, Scale};
use crate::experiments::{
    capacity_plan::CapacityPlan,
    figure1::Figure1, figure2::Figure2, figure3::Figure3, figure4::Figure4, figure5::Figure5,
    figure7::Figure7, fleet_hall::FleetHall, fleet_routing::FleetRouting,
    fleet_scaling::FleetScaling,
    formfactor::FormFactor, plan::Plan, scenario_cooling::ScenarioCooling,
    scenario_diurnal::ScenarioDiurnal, scenario_rebuild::ScenarioRebuild, shuffle::Shuffle,
    table1::Table1, table3::Table3, twin_whatif::TwinWhatif,
};

/// Every registered experiment, in name order, at the given scale.
pub fn registry(scale: Scale) -> Vec<Box<dyn Experiment>> {
    vec![
        Box::new(CapacityPlan::at_scale(scale)),
        Box::new(Figure1::default()),
        Box::new(Figure2),
        Box::new(Figure3),
        Box::new(Figure4::at_scale(scale)),
        Box::new(Figure5),
        Box::new(Figure7::default()),
        Box::new(FleetHall::at_scale(scale)),
        Box::new(FleetRouting::at_scale(scale)),
        Box::new(FleetScaling::at_scale(scale)),
        Box::new(FormFactor),
        Box::new(Plan),
        Box::new(ScenarioCooling::at_scale(scale)),
        Box::new(ScenarioDiurnal::at_scale(scale)),
        Box::new(ScenarioRebuild::at_scale(scale)),
        Box::new(Shuffle::at_scale(scale)),
        Box::new(Table1),
        Box::new(Table3),
        Box::new(TwinWhatif::at_scale(scale)),
    ]
}

/// The registered experiment names, in registry order.
pub fn names() -> Vec<&'static str> {
    registry(Scale::Quick).iter().map(|e| e.name()).collect()
}

/// Looks one experiment up by name.
pub fn by_name(name: &str, scale: Scale) -> Option<Box<dyn Experiment>> {
    registry(scale).into_iter().find(|e| e.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_sorted_and_unique() {
        let names = names();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(names, sorted, "registry must stay in sorted name order");
        assert_eq!(names.len(), 19);
    }

    #[test]
    fn lookup_finds_each_name() {
        for name in names() {
            assert!(by_name(name, Scale::Quick).is_some(), "{name} missing");
        }
        assert!(by_name("figure6", Scale::Quick).is_none());
    }

    #[test]
    fn digests_are_distinct_across_experiments() {
        let digests: std::collections::BTreeSet<String> = registry(Scale::Quick)
            .iter()
            .map(|e| e.config_digest())
            .collect();
        assert_eq!(digests.len(), 19);
    }

    #[test]
    fn scale_moves_simulation_digests_only() {
        let full = registry(Scale::Full);
        let quick = registry(Scale::Quick);
        for (f, q) in full.iter().zip(&quick) {
            let differs = f.config_digest() != q.config_digest();
            let simulation_heavy = matches!(
                f.name(),
                "capacity_plan" | "figure4" | "fleet_hall" | "fleet_routing" | "fleet_scaling"
                    | "scenario_cooling"
                    | "scenario_diurnal" | "scenario_rebuild" | "shuffle" | "twin_whatif"
            );
            assert_eq!(differs, simulation_heavy, "{}", f.name());
        }
    }
}
