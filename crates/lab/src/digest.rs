//! Stable content digests for cache keys.
//!
//! FNV-1a is not cryptographic, but the cache only needs a stable,
//! dependency-free fingerprint of a small config document — collisions
//! across a dozen experiment configs are not a realistic concern.

/// 64-bit FNV-1a over a byte string.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// Fixed-width lowercase hex rendering of a digest.
pub fn hex(digest: u64) -> String {
    format!("{digest:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn hex_is_stable_width() {
        assert_eq!(hex(0).len(), 16);
        assert_eq!(hex(u64::MAX), "ffffffffffffffff");
    }

    #[test]
    fn small_changes_move_the_digest() {
        assert_ne!(fnv1a64(b"figure1\0{}"), fnv1a64(b"figure2\0{}"));
    }
}
