//! Command-line front end shared by the `lab` binary and the thin
//! per-experiment wrapper binaries in the `bench` crate.

use crate::engine::Engine;
use crate::experiment::{Experiment, Scale};
use crate::registry;

/// Parsed `lab` command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Options {
    /// Experiment names to run; empty means `list`.
    pub names: Vec<String>,
    /// Run everything in the registry.
    pub all: bool,
    /// Print the registry and exit.
    pub list: bool,
    /// Run the thermal-kernel benchmark suite instead of experiments.
    pub bench: bool,
    /// Run instrumented trace scenarios instead of experiments.
    pub trace: bool,
    /// Digital-twin server/client mode; `names` holds the raw
    /// `twin ...` arguments.
    pub twin: bool,
    /// Print the help text to stdout and exit 0.
    pub help: bool,
    /// Profile experiments (cache off) and print per-stage wall times.
    pub profile: bool,
    /// Worker threads.
    pub threads: usize,
    /// Serve/populate the content-addressed cache.
    pub use_cache: bool,
    /// Run simulation-heavy experiments at reduced scale.
    pub quick: bool,
    /// Progress-logging level (`-q` / default / `--verbose`).
    pub verbosity: diskobs::logger::Level,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            names: Vec::new(),
            all: false,
            list: false,
            bench: false,
            trace: false,
            twin: false,
            help: false,
            profile: false,
            threads: 1,
            use_cache: true,
            quick: false,
            verbosity: diskobs::logger::Level::Normal,
        }
    }
}

/// Parses CLI arguments (everything after the binary name).
pub fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            // `lab run <experiment>` reads naturally in scripts; `run`
            // itself is a no-op — bare experiment names already run.
            "run" => {}
            "all" => opts.all = true,
            "list" => opts.list = true,
            "bench" => opts.bench = true,
            "trace" => opts.trace = true,
            "profile" => opts.profile = true,
            // The twin subcommand has its own flags (`--addr`, ...);
            // hand the rest of the line over verbatim.
            "twin" => {
                opts.twin = true;
                opts.names = args.collect();
                break;
            }
            "--verbose" | "-v" => opts.verbosity = diskobs::logger::Level::Verbose,
            "--quiet" | "-q" => opts.verbosity = diskobs::logger::Level::Quiet,
            "--threads" => {
                let v = args.next().ok_or("--threads needs a value")?;
                opts.threads = v
                    .parse::<usize>()
                    .map_err(|_| format!("bad thread count {v:?}"))?
                    .max(1);
            }
            "--no-cache" => opts.use_cache = false,
            "--quick" => opts.quick = true,
            "--help" | "-h" => opts.help = true,
            name if !name.starts_with('-') => opts.names.push(name.to_string()),
            other => return Err(format!("unknown flag {other:?} (try: lab --help)")),
        }
    }
    if !opts.all && !opts.list && !opts.bench && !opts.trace && !opts.profile && !opts.twin
        && !opts.help && opts.names.is_empty()
    {
        opts.list = true;
    }
    Ok(opts)
}

/// The help text.
pub fn usage() -> String {
    format!(
        "usage: lab [all | list | bench [scenario | surrogate] | trace <scenario>... | profile [<experiment>...] |\n\
         \x20           twin serve|query ... | [run] <experiment>...]\n\
         \x20           [--threads N] [--no-cache] [--quick] [-q | --verbose]\n\n\
         twin serve [--addr A] [--enclosures N] [--workload W] [--checkpoint PATH]\n\
         starts the digital-twin what-if server (line-delimited JSON over TCP);\n\
         twin query --addr HOST:PORT '<json>' sends one request and prints the answer.\n\n\
         bench times the thermal kernel, the storage event core (window\n\
         loop and calendar-vs-heap churn), the fleet event loop with its\n\
         parallel/serial phase split, end-to-end experiments, and the\n\
         instrumentation overhead; a full (non --quick) bench writes\n\
         BENCH_thermal.json, BENCH_sim.json, BENCH_fleet.json, and\n\
         BENCH_obs.json at the repo root, while --quick asserts the\n\
         obs-overhead bound. bench scenario runs only the scenario\n\
         subsystem suite (trace-replay draw throughput, rebuild-storm\n\
         epoch cost) and writes BENCH_scenario.json. bench surrogate\n\
         times capacity-plan screening against full simulation and\n\
         writes BENCH_surrogate.json.\n\n\
         trace runs an instrumented scenario and writes its event stream\n\
         (NDJSON), metrics, and snapshot timeseries under results/.\n\
         profile reruns experiments with the cache off and prints per-stage\n\
         wall times from the manifest.\n\n\
         experiments: {}\n\
         trace scenarios: {}",
        registry::names().join(", "),
        crate::trace::trace_names().join(", ")
    )
}

/// Runs a parsed command line against the workspace `results/`
/// directory. Returns a process exit code.
pub fn run(opts: &Options) -> i32 {
    diskobs::logger::set_level(opts.verbosity);
    if opts.help || opts.list {
        println!("{}", usage());
        return 0;
    }
    if opts.twin {
        return crate::twin_cli::run_twin(&opts.names);
    }
    if opts.bench {
        let outcome = match opts.names.first().map(String::as_str) {
            None => crate::bench::run_bench(opts.quick).map(|_| ()),
            Some("scenario") => crate::bench::run_scenario_bench(opts.quick).map(|_| ()),
            Some("surrogate") => crate::bench::run_surrogate_bench(opts.quick).map(|_| ()),
            Some(other) => {
                eprintln!("lab: unknown bench suite {other:?} (have: scenario, surrogate)");
                return 2;
            }
        };
        return match outcome {
            Ok(()) => 0,
            Err(e) => {
                eprintln!("bench failed: {e}");
                1
            }
        };
    }
    if opts.trace {
        return run_trace_command(opts);
    }
    if opts.profile {
        return run_profile_command(opts);
    }
    let scale = if opts.quick { Scale::Quick } else { Scale::Full };
    let experiments: Vec<Box<dyn Experiment>> = if opts.all {
        registry::registry(scale)
    } else {
        let mut chosen = Vec::new();
        for name in &opts.names {
            match registry::by_name(name, scale) {
                Some(exp) => chosen.push(exp),
                None => {
                    eprintln!("lab: unknown experiment {name:?} (run 'lab list' for the registry)");
                    return 2;
                }
            }
        }
        chosen
    };

    let engine = match Engine::workspace() {
        Ok(engine) => engine.threads(opts.threads).use_cache(opts.use_cache),
        Err(e) => {
            eprintln!("cannot open results directory: {e}");
            return 1;
        }
    };

    // Single-experiment runs keep the old binaries' behavior: the full
    // text report goes to stdout. Multi-experiment runs print a summary.
    let print_reports = !opts.all && experiments.len() == 1;
    match engine.run(experiments) {
        Ok(summary) => {
            if print_reports {
                for (_, text) in &summary.reports {
                    print!("{text}");
                }
            }
            let m = &summary.manifest;
            for entry in &m.experiments {
                diskobs::logger::info(&format!(
                    "{:<12} {:>9.1} ms  cache {:<4}  -> {}",
                    entry.name,
                    entry.wall_ms,
                    entry.cache,
                    entry.outputs.join(", ")
                ));
            }
            diskobs::logger::info(&format!(
                "{} experiments in {:.1} ms on {} thread(s); cache: {} hit(s), {} miss(es); wrote {}",
                m.experiments.len(),
                m.total_wall_ms,
                m.threads,
                m.hits(),
                m.misses(),
                engine.results_path().join("manifest.json").display(),
            ));
            0
        }
        Err(e) => {
            eprintln!("lab failed: {e}");
            1
        }
    }
}

/// `lab trace <scenario>...` — run instrumented scenarios and write
/// their event streams under `results/`.
fn run_trace_command(opts: &Options) -> i32 {
    if opts.names.is_empty() {
        eprintln!(
            "trace needs a scenario name (have: {})",
            crate::trace::trace_names().join(", ")
        );
        return 2;
    }
    let dir = match crate::text::results_dir() {
        Ok(dir) => dir,
        Err(e) => {
            eprintln!("cannot open results directory: {e}");
            return 1;
        }
    };
    for name in &opts.names {
        match crate::trace::run_trace(name, opts.threads, &dir) {
            Ok(outcome) => diskobs::logger::info(&format!(
                "trace {}: {} events, {} files",
                outcome.name,
                outcome.events,
                outcome.files.len()
            )),
            Err(e) => {
                eprintln!("trace {name} failed: {e}");
                return 1;
            }
        }
    }
    0
}

/// `lab profile [<experiment>...]` — rerun experiments with the cache
/// off into a scratch results directory and print the per-stage wall
/// times the engine's profiling spans recorded.
fn run_profile_command(opts: &Options) -> i32 {
    let scale = if opts.quick { Scale::Quick } else { Scale::Full };
    let experiments: Vec<Box<dyn Experiment>> = if opts.names.is_empty() {
        registry::registry(scale)
    } else {
        let mut chosen = Vec::new();
        for name in &opts.names {
            match registry::by_name(name, scale) {
                Some(exp) => chosen.push(exp),
                None => {
                    eprintln!("lab: unknown experiment {name:?} (run 'lab list' for the registry)");
                    return 2;
                }
            }
        }
        chosen
    };
    let dir = match crate::text::results_dir() {
        Ok(dir) => dir.join(".profile"),
        Err(e) => {
            eprintln!("cannot open results directory: {e}");
            return 1;
        }
    };
    let engine = Engine::at(dir).threads(opts.threads).use_cache(false);
    match engine.run(experiments) {
        Ok(summary) => {
            let m = &summary.manifest;
            println!("{:<14} {:>10}  stages", "experiment", "wall ms");
            for entry in &m.experiments {
                let stages = entry
                    .stages
                    .iter()
                    .map(|s| format!("{} {:.1} ms", s.name, s.wall_ms))
                    .collect::<Vec<_>>()
                    .join(", ");
                println!("{:<14} {:>10.1}  {}", entry.name, entry.wall_ms, stages);
            }
            println!(
                "{} experiments in {:.1} ms on {} thread(s), cache off",
                m.experiments.len(),
                m.total_wall_ms,
                m.threads
            );
            0
        }
        Err(e) => {
            eprintln!("profile failed: {e}");
            1
        }
    }
}

/// Entry point for the thin wrapper binaries: run exactly one registered
/// experiment at full scale and print its report.
pub fn run_wrapper(name: &str) -> i32 {
    run(&Options {
        names: vec![name.to_string()],
        ..Options::default()
    })
}

/// Like [`run_wrapper`] for a caller-constructed experiment (used by the
/// `figure4` wrapper to honor its request-count argument).
pub fn run_wrapper_experiment(exp: Box<dyn Experiment>) -> i32 {
    let engine = match Engine::workspace() {
        Ok(engine) => engine,
        Err(e) => {
            eprintln!("cannot open results directory: {e}");
            return 1;
        }
    };
    match engine.run(vec![exp]) {
        Ok(summary) => {
            for (_, text) in &summary.reports {
                print!("{text}");
            }
            for entry in &summary.manifest.experiments {
                diskobs::logger::info(&format!(
                    "{:<12} {:>9.1} ms  cache {:<4}  -> {}",
                    entry.name,
                    entry.wall_ms,
                    entry.cache,
                    entry.outputs.join(", ")
                ));
            }
            0
        }
        Err(e) => {
            eprintln!("{e}");
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Options {
        parse_args(args.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn parses_all_with_flags() {
        let opts = parse(&["all", "--threads", "8", "--no-cache", "--quick"]);
        assert!(opts.all);
        assert_eq!(opts.threads, 8);
        assert!(!opts.use_cache);
        assert!(opts.quick);
    }

    #[test]
    fn bare_invocation_lists() {
        assert!(parse(&[]).list);
    }

    #[test]
    fn bench_subcommand_parses() {
        let opts = parse(&["bench", "--quick"]);
        assert!(opts.bench);
        assert!(opts.quick);
        assert!(!opts.list);
    }

    #[test]
    fn bench_scenario_suite_parses_as_a_name() {
        let opts = parse(&["bench", "scenario", "--quick"]);
        assert!(opts.bench);
        assert_eq!(opts.names, ["scenario"]);
        assert!(opts.quick);
    }

    #[test]
    fn run_is_a_transparent_alias() {
        let opts = parse(&["run", "fleet_scaling", "--quick"]);
        assert_eq!(opts.names, ["fleet_scaling"]);
        assert!(opts.quick);
        assert!(!opts.list);
        assert_eq!(parse(&["run", "fleet_routing"]), parse(&["fleet_routing"]));
    }

    #[test]
    fn experiment_names_accumulate() {
        let opts = parse(&["figure1", "table3"]);
        assert_eq!(opts.names, ["figure1", "table3"]);
        assert!(!opts.all);
    }

    #[test]
    fn rejects_unknown_flags_and_bad_threads() {
        assert!(parse_args(["--wat".to_string()]).is_err());
        assert!(parse_args(["--threads".to_string(), "zero?".to_string()]).is_err());
        assert_eq!(parse(&["--threads", "0"]).threads, 1);
    }

    #[test]
    fn usage_names_every_experiment() {
        let text = usage();
        for name in crate::registry::names() {
            assert!(text.contains(name), "{name} missing from usage");
        }
        for name in crate::trace::trace_names() {
            assert!(text.contains(name), "{name} missing from usage");
        }
    }

    #[test]
    fn trace_and_profile_subcommands_parse() {
        let opts = parse(&["trace", "figure5", "--threads", "4"]);
        assert!(opts.trace);
        assert!(!opts.list);
        assert_eq!(opts.names, ["figure5"]);
        assert_eq!(opts.threads, 4);

        let opts = parse(&["profile"]);
        assert!(opts.profile);
        assert!(!opts.list, "profile with no names means all experiments");
    }

    #[test]
    fn help_parses_instead_of_erroring() {
        assert!(parse(&["--help"]).help);
        assert!(parse(&["-h"]).help);
        assert!(!parse(&["--help"]).list, "help prints usage via its own path");
    }

    #[test]
    fn unknown_flags_fail_with_a_single_line() {
        let err = parse_args(["--wat".to_string()]).unwrap_err();
        assert!(!err.contains('\n'), "error must be one line: {err:?}");
        assert!(err.contains("--wat"));
    }

    #[test]
    fn twin_subcommand_passes_arguments_through_verbatim() {
        let opts = parse(&["twin", "serve", "--addr", "127.0.0.1:0", "--quick"]);
        assert!(opts.twin);
        assert_eq!(opts.names, ["serve", "--addr", "127.0.0.1:0", "--quick"]);
        assert!(!opts.quick, "twin flags are not lab flags");
        assert!(!opts.list);
    }

    #[test]
    fn verbosity_flags_parse() {
        use diskobs::logger::Level;
        assert_eq!(parse(&[]).verbosity, Level::Normal);
        assert_eq!(parse(&["all", "-q"]).verbosity, Level::Quiet);
        assert_eq!(parse(&["all", "--quiet"]).verbosity, Level::Quiet);
        assert_eq!(parse(&["all", "--verbose"]).verbosity, Level::Verbose);
        assert_eq!(parse(&["all", "-v"]).verbosity, Level::Verbose);
    }
}
