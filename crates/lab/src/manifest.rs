//! The run manifest written to `results/manifest.json`: what ran, from
//! cache or fresh, how long it took, and which files it produced.

use serde::{Deserialize, Serialize};

/// One experiment's entry in the manifest.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ManifestEntry {
    /// Experiment name.
    pub name: String,
    /// Content digest of (name, config, crate version).
    pub digest: String,
    /// `"hit"` when served from the result cache, `"miss"` when computed.
    pub cache: String,
    /// Wall time this run spent on the experiment, milliseconds.
    pub wall_ms: f64,
    /// Per-stage wall times (`cache_probe`, `compute`, `write_outputs`,
    /// `cache_store`) inside `wall_ms`, in execution order.
    pub stages: Vec<diskobs::Span>,
    /// Files written under `results/`, relative names.
    pub outputs: Vec<String>,
}

/// The full manifest for one `lab` invocation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Manifest {
    /// Manifest schema version.
    pub schema: u32,
    /// `disklab` crate version that produced the results.
    pub crate_version: String,
    /// Worker threads used.
    pub threads: usize,
    /// End-to-end wall time, milliseconds.
    pub total_wall_ms: f64,
    /// Per-experiment records, sorted by name.
    pub experiments: Vec<ManifestEntry>,
}

impl Manifest {
    /// Number of cache hits recorded.
    pub fn hits(&self) -> usize {
        self.experiments.iter().filter(|e| e.cache == "hit").count()
    }

    /// Number of cache misses recorded.
    pub fn misses(&self) -> usize {
        self.experiments.len() - self.hits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_round_trips_through_json() {
        let m = Manifest {
            schema: 2,
            crate_version: "0.1.0".into(),
            threads: 4,
            total_wall_ms: 12.5,
            experiments: vec![ManifestEntry {
                name: "figure1".into(),
                digest: "abc".into(),
                cache: "miss".into(),
                wall_ms: 3.25,
                stages: vec![diskobs::Span {
                    name: "compute".into(),
                    wall_ms: 3.0,
                }],
                outputs: vec!["figure1.json".into(), "figure1.txt".into()],
            }],
        };
        let text = serde_json::to_string_pretty(&m).unwrap();
        let back: Manifest = serde_json::from_str(&text).unwrap();
        assert_eq!(back.experiments[0].name, "figure1");
        assert_eq!(back.experiments[0].stages[0].name, "compute");
        assert_eq!(back.hits(), 0);
        assert_eq!(back.misses(), 1);
    }
}
