//! Text-report helpers shared by every experiment, plus the
//! `results/`-directory plumbing that used to live in the `bench` crate
//! (now Result-returning instead of panicking).

use serde::Serialize;
use std::fs;
use std::io;
use std::path::PathBuf;

/// Appends a formatted line to an experiment's text report. `write!` into
/// a `String` cannot fail, so the macro swallows the `fmt::Result`.
macro_rules! outln {
    ($dst:expr) => {{
        use std::fmt::Write as _;
        let _ = writeln!($dst);
    }};
    ($dst:expr, $($arg:tt)*) => {{
        use std::fmt::Write as _;
        let _ = writeln!($dst, $($arg)*);
    }};
}

/// Appends formatted text (no newline) to an experiment's text report.
macro_rules! out {
    ($dst:expr, $($arg:tt)*) => {{
        use std::fmt::Write as _;
        let _ = write!($dst, $($arg)*);
    }};
}

pub(crate) use {out, outln};

/// Returns the workspace `results/` directory, creating it if missing.
pub fn results_dir() -> io::Result<PathBuf> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results");
    fs::create_dir_all(&dir)?;
    Ok(dir)
}

/// Serializes `value` as pretty JSON into `results/<name>.json` and
/// returns the path written.
pub fn save_json<T: Serialize>(name: &str, value: &T) -> io::Result<PathBuf> {
    let path = results_dir()?.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).map_err(io::Error::other)?;
    fs::write(&path, json)?;
    diskobs::logger::info(&format!("wrote {}", path.display()));
    Ok(path)
}

/// Renders a separator line sized to a table width.
pub fn rule(width: usize) -> String {
    "-".repeat(width)
}

/// Renders an ASCII line chart of `(x, y)` series, one row per y-bucket,
/// suitable for eyeballing the shape of a figure in the terminal.
///
/// # Panics
///
/// Panics if `height` or `width` is zero.
pub fn ascii_plot(series: &[(&str, &[(f64, f64)])], width: usize, height: usize) -> String {
    assert!(width > 0 && height > 0, "plot needs a positive canvas");
    let points: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|(_, pts)| pts.iter().copied())
        .filter(|(x, y)| x.is_finite() && y.is_finite())
        .collect();
    if points.is_empty() {
        return "(no data)".into();
    }
    let (mut x0, mut x1, mut y0, mut y1) = (f64::MAX, f64::MIN, f64::MAX, f64::MIN);
    for &(x, y) in &points {
        x0 = x0.min(x);
        x1 = x1.max(x);
        y0 = y0.min(y);
        y1 = y1.max(y);
    }
    if (x1 - x0).abs() < 1e-12 {
        x1 = x0 + 1.0;
    }
    if (y1 - y0).abs() < 1e-12 {
        y1 = y0 + 1.0;
    }

    let mut grid = vec![vec![' '; width]; height];
    let marks = ['*', '+', 'o', 'x', '#', '@'];
    for (si, (_, pts)) in series.iter().enumerate() {
        let mark = marks[si % marks.len()];
        for &(x, y) in pts.iter() {
            if !x.is_finite() || !y.is_finite() {
                continue;
            }
            let col = (((x - x0) / (x1 - x0)) * (width - 1) as f64).round() as usize;
            let row = (((y1 - y) / (y1 - y0)) * (height - 1) as f64).round() as usize;
            grid[row.min(height - 1)][col.min(width - 1)] = mark;
        }
    }

    let mut out = String::new();
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            format!("{y1:>10.2} |")
        } else if i == height - 1 {
            format!("{y0:>10.2} |")
        } else {
            format!("{:>10} |", "")
        };
        out.push_str(&label);
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("{:>10}  {}", "", "-".repeat(width)));
    out.push('\n');
    out.push_str(&format!(
        "{:>10}  {:<width$.2}{:>.2}",
        "",
        x0,
        x1,
        width = width.saturating_sub(6)
    ));
    out.push('\n');
    for (si, (name, _)) in series.iter().enumerate() {
        out.push_str(&format!("{:>12} {}  ", marks[si % marks.len()], name));
    }
    if !series.is_empty() {
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_dir_exists_after_call() {
        let dir = results_dir().unwrap();
        assert!(dir.is_dir());
    }

    #[test]
    fn save_json_round_trips() {
        let path = save_json("selftest", &vec![1, 2, 3]).unwrap();
        let text = fs::read_to_string(&path).unwrap();
        let back: Vec<i32> = serde_json::from_str(&text).unwrap();
        assert_eq!(back, vec![1, 2, 3]);
        let _ = fs::remove_file(path);
    }

    #[test]
    fn rule_has_requested_width() {
        assert_eq!(rule(5), "-----");
    }

    #[test]
    fn plot_renders_every_series_mark() {
        let a: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, i as f64)).collect();
        let b: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, (10 - i) as f64)).collect();
        let text = ascii_plot(&[("up", &a), ("down", &b)], 40, 10);
        assert!(text.contains('*'));
        assert!(text.contains('+'));
        assert!(text.contains("up"));
        assert!(text.contains("down"));
    }

    #[test]
    fn plot_survives_degenerate_data() {
        let flat = [(1.0, 2.0), (2.0, 2.0)];
        let text = ascii_plot(&[("flat", &flat)], 20, 5);
        assert!(text.contains('*'));
        assert_eq!(ascii_plot(&[("none", &[])], 20, 5), "(no data)");
    }

    #[test]
    fn outln_builds_reports() {
        let mut s = String::new();
        outln!(s, "a {}", 1);
        out!(s, "b");
        outln!(s);
        assert_eq!(s, "a 1\nb\n");
    }
}
