//! The surrogate training sweep: full-sim evaluation of machine-room
//! hall configurations over a knob grid.
//!
//! Every point is one complete fleet simulation — a [`HallSpec`]
//! geometry under thermal-aware routing, driven by one of the workload
//! presets — reduced to the deterministic target vector a
//! [`disksurrogate::GridSurrogate`] fits: peak exit-air temperature,
//! DTM engagement rate, and response-time quantiles (the reservoir p95
//! plus the `LogHistogram`-bucketed p50/p95), exported through
//! [`diskobs::Registry::flatten`]. Points run in parallel through the
//! same work-stealing [`parallel_map`] the fleet shards its event loop
//! with; each point runs its fleet single-threaded and is a pure
//! function of its coordinates, so sweep results are byte-identical at
//! any `threads`.
//!
//! The per-point reduction is allocation-free after warm-up: the trace
//! buffer refills via `TraceGenerator::generate_into`, the histogram
//! re-buckets in place after `reset_histograms`, percentiles sort into
//! a reused scratch buffer, and the target vector lands in a reused
//! `Vec<f64>` via `flatten_values_into`. `tests/alloc_budget.rs` pins
//! that path at zero heap allocations per point.

use crate::error::LabError;
use diskfleet::{Fleet, FleetDtmPolicy, FleetReport, HallSpec, RoutingPolicy};
use diskobs::{LogHistogram, Registry};
use disksim::par::parallel_map;
use disksim::{DiskSpec, Request, StorageSystem, SystemConfig};
use disksurrogate::{Axis, TrainingSample};
use diskthermal::{DriveThermalSpec, THERMAL_ENVELOPE};
use serde::Serialize;
use std::cell::RefCell;
use units::{Celsius, Inches, Rpm, TempDelta};
use workloads::{TraceGenerator, WorkloadPreset};

/// Knob names, in axis order. `dtm` is a two-level factor (0 = none,
/// 1 = the §5.2 speed-scaling coordinator); the others are numeric.
pub const KNOBS: [&str; 5] = ["rate", "per_rack", "racks_per_row", "inlet_c", "dtm"];

/// Axis index of `per_rack` — the capacity-planning objective knob.
pub const PER_RACK_AXIS: usize = 1;

/// Quantiles the histogram contributes to the target vector.
pub const TARGET_QUANTILES: [f64; 2] = [0.5, 0.95];

/// Full spindle speed (the 2002 15k-RPM point every fleet experiment
/// uses).
const HIGH_RPM: f64 = 15_020.0;
/// The speed-scaling coordinator's fallback speed.
const LOW_RPM: f64 = 12_000.0;

/// A training/holdout sweep over hall knobs for one workload preset.
///
/// The grid is the Cartesian product of the five knob value lists;
/// `rows`, `requests`, and `seed` are held fixed across the sweep.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SweepSpec {
    /// Workload preset name (see `workloads::presets`).
    pub preset: String,
    /// Rows in every hall (geometry beyond the two swept knobs).
    pub rows: usize,
    /// Requests per simulated trace.
    pub requests: usize,
    /// Trace-generator seed.
    pub seed: u64,
    /// Fleet-wide offered load values, requests/s.
    pub rates: Vec<f64>,
    /// Drive bays per rack (integral values).
    pub per_rack: Vec<f64>,
    /// Racks per row (integral values).
    pub racks_per_row: Vec<f64>,
    /// Cold-aisle inlet temperatures, degrees Celsius.
    pub inlets_c: Vec<f64>,
    /// DTM factor levels; each must be 0.0 or 1.0.
    pub dtm: Vec<f64>,
}

impl SweepSpec {
    /// The sweep's surrogate axes, in [`KNOBS`] order.
    ///
    /// # Errors
    ///
    /// Any knob list empty or not strictly increasing.
    pub fn axes(&self) -> Result<Vec<Axis>, LabError> {
        let lists = [
            &self.rates,
            &self.per_rack,
            &self.racks_per_row,
            &self.inlets_c,
            &self.dtm,
        ];
        KNOBS
            .iter()
            .zip(lists)
            .map(|(name, values)| {
                Axis::new(*name, values.clone())
                    .map_err(|e| LabError::Experiment(format!("sweep axes: {e}")))
            })
            .collect()
    }

    /// Every grid point, row-major with the last knob fastest — the
    /// same cell order `GridSurrogate` stores.
    pub fn grid(&self) -> Vec<Vec<f64>> {
        let mut points = vec![Vec::new()];
        for values in [
            &self.rates,
            &self.per_rack,
            &self.racks_per_row,
            &self.inlets_c,
            &self.dtm,
        ] {
            let mut next = Vec::with_capacity(points.len() * values.len());
            for prefix in &points {
                for &v in values.iter() {
                    let mut p = prefix.clone();
                    p.push(v);
                    next.push(p);
                }
            }
            points = next;
        }
        points
    }

    /// Held-out cross-validation points: for each DTM level, the
    /// midpoint of the first adjacent node pair on every numeric axis
    /// (integer knobs round to the nearest bay/rack). These never enter
    /// the fit, so the surrogate's error on them is an honest estimate
    /// of its screening error between grid nodes.
    pub fn holdout(&self) -> Vec<Vec<f64>> {
        let mid = |v: &[f64]| {
            if v.len() >= 2 {
                (v[0] + v[1]) / 2.0
            } else {
                v[0]
            }
        };
        let int_mid = |v: &[f64]| mid(v).round();
        self.dtm
            .iter()
            .map(|&dtm| {
                vec![
                    mid(&self.rates),
                    int_mid(&self.per_rack),
                    int_mid(&self.racks_per_row),
                    mid(&self.inlets_c),
                    dtm,
                ]
            })
            .collect()
    }

    /// Runs the full simulator at one knob point and reduces the fleet
    /// report to the target vector.
    ///
    /// # Errors
    ///
    /// Malformed coordinates (wrong arity, fractional integer knobs, a
    /// DTM level other than 0/1, an unknown preset) or any simulator
    /// failure.
    pub fn evaluate(&self, coords: &[f64]) -> Result<TrainingSample, LabError> {
        SCRATCH.with(|cell| self.evaluate_with(coords, &mut cell.borrow_mut()))
    }

    /// [`Self::evaluate`] against caller-owned scratch — the reusable
    /// buffers `tests/alloc_budget.rs` pins.
    pub fn evaluate_with(
        &self,
        coords: &[f64],
        scratch: &mut SweepScratch,
    ) -> Result<TrainingSample, LabError> {
        let report = self.simulate(coords, scratch)?;
        let outputs = extract_targets(&report, scratch);
        Ok(TrainingSample::new(coords.to_vec(), outputs))
    }

    /// Evaluates many points across `threads` workers. Points map to
    /// results in order, and every point is a pure function of its
    /// coordinates, so the result is byte-identical at any thread
    /// count.
    ///
    /// # Errors
    ///
    /// The first failing point (in input order).
    pub fn run(
        &self,
        points: &[Vec<f64>],
        threads: usize,
    ) -> Result<Vec<TrainingSample>, LabError> {
        parallel_map(points.to_vec(), threads, |coords| self.evaluate(&coords))
            .into_iter()
            .collect()
    }

    /// One full fleet simulation at `coords`. Public so
    /// `tests/alloc_budget.rs` can obtain a report to reduce on its
    /// own; everything else goes through [`Self::evaluate`].
    pub fn simulate(
        &self,
        coords: &[f64],
        scratch: &mut SweepScratch,
    ) -> Result<FleetReport, LabError> {
        let fail =
            |e: &dyn std::fmt::Display| LabError::Experiment(format!("sweep point {coords:?}: {e}"));
        let [rate, per_rack, racks_per_row, inlet_c, dtm] = coords else {
            return Err(fail(&format!(
                "expected {} coordinates, got {}",
                KNOBS.len(),
                coords.len()
            )));
        };
        let as_count = |name: &str, v: f64| -> Result<usize, LabError> {
            if v.fract() != 0.0 || v < 1.0 {
                return Err(fail(&format!("{name} must be a positive integer, got {v}")));
            }
            Ok(v as usize)
        };
        let per_rack = as_count("per_rack", *per_rack)?;
        let racks_per_row = as_count("racks_per_row", *racks_per_row)?;
        if *dtm != 0.0 && *dtm != 1.0 {
            return Err(fail(&format!("dtm level must be 0 or 1, got {dtm}")));
        }

        let spec = DiskSpec::era(2002, 1, Rpm::new(HIGH_RPM));
        let thermal = DriveThermalSpec::new(Inches::new(2.6), 1);
        let hall = HallSpec::new(per_rack, racks_per_row, self.rows, Celsius::new(*inlet_c));
        let mut config = hall.config(spec.clone(), thermal).map_err(|e| fail(&e))?;
        config.routing = RoutingPolicy::ThermalAware {
            envelope: THERMAL_ENVELOPE,
        };
        config.dtm = if *dtm == 1.0 {
            FleetDtmPolicy::SpeedScale {
                high: Rpm::new(HIGH_RPM),
                low: Rpm::new(LOW_RPM),
                guard: TempDelta::new(0.3),
                resume_margin: TempDelta::new(0.3),
            }
        } else {
            FleetDtmPolicy::None
        };
        // Each point is one worker's job; parallelism lives across
        // points, and a serial fleet keeps the point's cost minimal.
        config.threads = 1;

        let preset = preset_by_name(&self.preset)
            .ok_or_else(|| fail(&format!("unknown workload preset {:?}", self.preset)))?;
        let capacity = StorageSystem::new(SystemConfig::single_disk(spec))
            .map_err(|e| fail(&e))?
            .logical_sectors();
        let generator = TraceGenerator::new(
            preset.profile.clone(),
            preset.arrivals.with_mean_rate(*rate),
            1,
            capacity,
        )
        .map_err(|e| fail(&e))?;
        generator.generate_into(self.requests, self.seed, &mut scratch.trace);

        let fleet = Fleet::new(config).map_err(|e| fail(&e))?;
        fleet.run(scratch.trace.clone()).map_err(|e| fail(&e))
    }
}

/// Per-worker reusable buffers for the sweep loop. One instance lives
/// in thread-local storage per worker; `tests/alloc_budget.rs` drives
/// [`extract_targets`] against an explicit instance to pin the
/// per-point reduction at zero steady-state allocations.
pub struct SweepScratch {
    /// Trace buffer refilled by `generate_into` each point.
    pub trace: Vec<Request>,
    /// Reservoir sort buffer for `percentile_with`.
    pub percentile: Vec<f64>,
    /// The metrics registry the target vector flattens out of.
    pub registry: Registry,
    /// Value buffer for `flatten_values_into`.
    pub values: Vec<f64>,
    /// Flattened target names; populated on first extraction.
    names: Vec<String>,
}

impl SweepScratch {
    /// Empty scratch; buffers grow to their high-water marks on first
    /// use and are reused afterwards.
    pub fn new() -> Self {
        SweepScratch {
            trace: Vec::new(),
            percentile: Vec::new(),
            registry: Registry::new(),
            values: Vec::new(),
            names: Vec::new(),
        }
    }
}

impl Default for SweepScratch {
    fn default() -> Self {
        Self::new()
    }
}

thread_local! {
    static SCRATCH: RefCell<SweepScratch> = RefCell::new(SweepScratch::new());
}

/// Reduces a fleet report into `scratch.values` (and, on first use,
/// `scratch.names`) through the metrics registry: gauges for peak
/// exit-air temperature, DTM engagement rate, and the reservoir p95;
/// the response-time distribution re-bucketed into the `response_ms`
/// log histogram. After the scratch registry has seen one report and
/// the buffers have grown to their high-water marks, this performs
/// **zero** heap allocations — the property `tests/alloc_budget.rs`
/// pins.
pub fn reduce_targets(report: &FleetReport, scratch: &mut SweepScratch) {
    let reg = &mut scratch.registry;
    reg.reset_histograms();
    reg.gauge_set("peak_air_c", report.max_air.get());
    reg.gauge_set("dtm_engaged", engagement_rate(report));
    reg.gauge_set(
        "p95_ms",
        report
            .stats
            .percentile_with(&mut scratch.percentile, 95.0)
            .to_millis(),
    );
    for &ms in report.stats.samples_ms() {
        reg.observe("response_ms", ms, LogHistogram::response_ms);
    }
    reg.flatten_values_into(&TARGET_QUANTILES, &mut scratch.values);
    if scratch.names.is_empty() {
        scratch.names = reg
            .flatten(&TARGET_QUANTILES)
            .into_iter()
            .map(|(name, _)| name)
            .collect();
    }
}

/// [`reduce_targets`] plus materializing the named target vector the
/// [`TrainingSample`] carries (the one place the per-point loop clones
/// the output names).
pub fn extract_targets(report: &FleetReport, scratch: &mut SweepScratch) -> Vec<(String, f64)> {
    reduce_targets(report, scratch);
    scratch
        .names
        .iter()
        .cloned()
        .zip(scratch.values.iter().copied())
        .collect()
}

/// Fraction of fleet drive-time spent under active DTM actuation
/// (speed-scaled or admission-gated), 0 when the fleet served no time.
pub fn engagement_rate(report: &FleetReport) -> f64 {
    let total = report.total_time.get() * report.enclosures as f64;
    if total <= 0.0 {
        return 0.0;
    }
    let actuated: f64 = report
        .per_enclosure
        .iter()
        .map(|e| e.time_scaled.get() + e.time_gated.get())
        .sum();
    actuated / total
}

/// The sweepable workload presets, keyed by slug (the display names in
/// `workloads::presets` carry spaces and punctuation).
pub const PRESET_SLUGS: [&str; 5] = ["openmail", "oltp", "search_engine", "tpcc", "tpch"];

/// Looks up a workload preset by slug.
pub fn preset_by_name(name: &str) -> Option<WorkloadPreset> {
    match name {
        "openmail" => Some(workloads::openmail()),
        "oltp" => Some(workloads::oltp()),
        "search_engine" => Some(workloads::search_engine()),
        "tpcc" => Some(workloads::tpcc()),
        "tpch" => Some(workloads::tpch()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> SweepSpec {
        SweepSpec {
            preset: "oltp".into(),
            rows: 1,
            requests: 120,
            seed: 7,
            rates: vec![200.0, 400.0],
            per_rack: vec![4.0, 8.0],
            racks_per_row: vec![2.0],
            inlets_c: vec![28.0],
            dtm: vec![0.0, 1.0],
        }
    }

    #[test]
    fn grid_is_the_row_major_cartesian_product() {
        let spec = tiny_spec();
        let grid = spec.grid();
        // 2 rates x 2 per_rack x 1 racks x 1 inlet x 2 dtm levels.
        assert_eq!(grid.len(), 8);
        assert_eq!(grid[0], vec![200.0, 4.0, 2.0, 28.0, 0.0]);
        assert_eq!(grid[1], vec![200.0, 4.0, 2.0, 28.0, 1.0]);
        assert_eq!(grid[7], vec![400.0, 8.0, 2.0, 28.0, 1.0]);
    }

    #[test]
    fn holdout_sits_between_the_first_nodes_at_each_dtm_level() {
        let spec = tiny_spec();
        let holdout = spec.holdout();
        assert_eq!(holdout.len(), 2);
        assert_eq!(holdout[0], vec![300.0, 6.0, 2.0, 28.0, 0.0]);
        assert_eq!(holdout[1][4], 1.0);
    }

    #[test]
    fn evaluate_produces_the_flattened_target_vector() {
        let spec = tiny_spec();
        let sample = spec.evaluate(&[200.0, 4.0, 2.0, 28.0, 0.0]).unwrap();
        let names: Vec<&str> = sample.outputs.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            [
                "dtm_engaged",
                "p95_ms",
                "peak_air_c",
                "response_ms_mean",
                "response_ms_p50",
                "response_ms_p95"
            ]
        );
        let peak = sample.outputs[2].1;
        assert!(peak > 28.0, "exit air must exceed the inlet, got {peak}");
        assert_eq!(sample.outputs[0].1, 0.0, "no DTM at level 0");
    }

    #[test]
    fn malformed_coordinates_are_rejected() {
        let spec = tiny_spec();
        assert!(spec.evaluate(&[200.0, 4.5, 2.0, 28.0, 0.0]).is_err());
        assert!(spec.evaluate(&[200.0, 4.0, 2.0, 28.0, 0.5]).is_err());
        assert!(spec.evaluate(&[200.0, 4.0]).is_err());
        let mut bad = tiny_spec();
        bad.preset = "no_such_preset".into();
        assert!(bad.evaluate(&[200.0, 4.0, 2.0, 28.0, 0.0]).is_err());
    }

    #[test]
    fn parallel_sweep_matches_serial_exactly() {
        let spec = tiny_spec();
        let points = spec.grid();
        let serial = spec.run(&points, 1).unwrap();
        let threaded = spec.run(&points, 8).unwrap();
        assert_eq!(serial, threaded);
        assert_eq!(serial.len(), points.len());
    }

    #[test]
    fn dtm_level_engages_under_load() {
        let spec = tiny_spec();
        // Hot inlet so the envelope binds and speed scaling actuates.
        let on = spec.evaluate(&[400.0, 8.0, 2.0, 44.0, 1.0]).unwrap();
        let off = spec.evaluate(&[400.0, 8.0, 2.0, 44.0, 0.0]).unwrap();
        assert_eq!(off.outputs[0].1, 0.0);
        assert!(
            on.outputs[0].1 > 0.0,
            "speed scaling should engage at a 44C inlet: {:?}",
            on.outputs
        );
    }
}

