//! The `Experiment` abstraction every table/figure regenerator
//! implements, plus the scale knob used to shrink simulation-heavy
//! experiments for fast test runs.

use crate::digest;
use crate::error::LabError;
use serde_json::Value;

/// How much work simulation-heavy experiments should do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Paper-scale request counts — the default for the `lab` CLI.
    Full,
    /// Reduced request counts for integration tests and smoke runs.
    /// Results are still deterministic, just coarser.
    Quick,
}

/// Everything one experiment produces: machine-readable JSON payloads
/// (one per output stem, e.g. `figure5_slack` and `figure5_roadmap`),
/// optional verbatim side files (e.g. per-epoch CSV timeseries), and
/// the human-readable text report that used to go to stdout.
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// `(stem, payload)` pairs; each becomes `results/<stem>.json`.
    pub json: Vec<(String, Value)>,
    /// `(file name, contents)` pairs written byte-for-byte under
    /// `results/` — the extension is the experiment's to choose.
    pub files: Vec<(String, String)>,
    /// The text report; becomes `results/<name>.txt`.
    pub text: String,
}

impl RunOutput {
    /// Single-payload output named after the experiment itself.
    pub fn single(stem: &str, payload: Value, text: String) -> Self {
        RunOutput {
            json: vec![(stem.to_string(), payload)],
            files: Vec::new(),
            text,
        }
    }

    /// Attaches a verbatim side file (builder style).
    #[must_use]
    pub fn with_file(mut self, name: &str, contents: String) -> Self {
        self.files.push((name.to_string(), contents));
        self
    }
}

/// A registered, cacheable experiment.
pub trait Experiment: Send + Sync {
    /// Stable identifier; also the output stem and cache-key prefix.
    fn name(&self) -> &'static str;

    /// The configuration that determines this experiment's results, as a
    /// JSON document. Two runs with equal configs (and equal crate
    /// versions) may share cached results.
    fn config(&self) -> Value;

    /// Computes the experiment, returning its payloads and text report.
    fn run(&self) -> Result<RunOutput, LabError>;

    /// Content digest of (name, config, crate version): the cache key.
    fn config_digest(&self) -> String {
        let config = serde_json::to_string(&self.config()).unwrap_or_default();
        let keyed = format!(
            "{}\0{}\0{}",
            self.name(),
            config,
            env!("CARGO_PKG_VERSION")
        );
        digest::hex(digest::fnv1a64(keyed.as_bytes()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Serialize as _;
    use serde_json::Map;

    struct Fake {
        knob: u64,
    }

    impl Experiment for Fake {
        fn name(&self) -> &'static str {
            "fake"
        }
        fn config(&self) -> Value {
            let mut m = Map::new();
            m.insert("knob", self.knob.to_value());
            Value::Object(m)
        }
        fn run(&self) -> Result<RunOutput, LabError> {
            Ok(RunOutput::single("fake", Value::Null, String::new()))
        }
    }

    #[test]
    fn digest_tracks_config() {
        let a = Fake { knob: 1 }.config_digest();
        let b = Fake { knob: 2 }.config_digest();
        assert_ne!(a, b);
        assert_eq!(a.len(), 16);
        assert_eq!(a, Fake { knob: 1 }.config_digest());
    }
}
