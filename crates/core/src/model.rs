//! The integrated drive design: one description, three models.

use diskgeom::{DriveGeometry, GeometryError, Platter, RecordingTech};
use diskperf::{idr, sustained_idr, SeekProfile};
use disksim::DiskSpec;
use diskthermal::{
    max_rpm_within_envelope, DriveThermalSpec, EnvelopeSearch, FormFactor, NodeTemps,
    OperatingPoint, ThermalModel, ThermalParams,
};
use roadmap::TechnologyTrend;
use serde::{Deserialize, Serialize};
use units::{BitsPerInch, Capacity, Celsius, DataRate, Inches, Rpm, TracksPerInch};

/// Errors from assembling a [`DriveDesign`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DesignError {
    /// The recorded geometry was invalid.
    Geometry(GeometryError),
    /// A required builder field was missing.
    MissingField {
        /// The field that was not set.
        field: &'static str,
    },
    /// The platter does not fit the chosen enclosure.
    DoesNotFit {
        /// Platter diameter requested.
        platter: Inches,
        /// Enclosure chosen.
        form_factor: FormFactor,
    },
}

impl core::fmt::Display for DesignError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Geometry(e) => write!(f, "geometry error: {e}"),
            Self::MissingField { field } => write!(f, "builder field `{field}` was not set"),
            Self::DoesNotFit {
                platter,
                form_factor,
            } => write!(f, "a {platter} platter does not fit a {form_factor}"),
        }
    }
}

impl std::error::Error for DesignError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Geometry(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GeometryError> for DesignError {
    fn from(e: GeometryError) -> Self {
        Self::Geometry(e)
    }
}

/// A complete drive design, integrating the capacity, performance and
/// thermal models over a single parameter set.
///
/// Construct with [`DriveDesign::builder`].
///
/// # Examples
///
/// ```
/// use thermodisk::DriveDesign;
/// use units::{Inches, Rpm};
///
/// let d = DriveDesign::builder()
///     .platter_diameter(Inches::new(2.1))
///     .platters(2)
///     .zones(50)
///     .rpm(Rpm::new(18_692.0)) // Table 3's 2002 requirement
///     .densities_of_year(2002)
///     .build()?;
/// assert!((d.worst_case_temp().get() - 43.56).abs() < 1.0);
/// # Ok::<(), thermodisk::DesignError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriveDesign {
    geometry: DriveGeometry,
    rpm: Rpm,
    thermal_spec: DriveThermalSpec,
    thermal_params: ThermalParams,
    seek: SeekProfile,
}

impl DriveDesign {
    /// Starts a builder.
    pub fn builder() -> DriveDesignBuilder {
        DriveDesignBuilder::default()
    }

    /// The recorded geometry.
    pub fn geometry(&self) -> &DriveGeometry {
        &self.geometry
    }

    /// Spindle speed of the design point.
    pub fn rpm(&self) -> Rpm {
        self.rpm
    }

    /// The seek profile.
    pub fn seek(&self) -> &SeekProfile {
        &self.seek
    }

    /// User capacity (§3.1, eq. 3).
    pub fn capacity(&self) -> Capacity {
        self.geometry.capacity()
    }

    /// Peak internal data rate at the design RPM (§3.2, eq. 4).
    pub fn max_idr(&self) -> DataRate {
        idr(self.geometry.zones(), self.rpm)
    }

    /// Capacity-weighted whole-drive scan rate.
    pub fn sustained_idr(&self) -> DataRate {
        sustained_idr(self.geometry.zones(), self.rpm)
    }

    /// The assembled thermal model.
    pub fn thermal_model(&self) -> ThermalModel {
        ThermalModel::with_params(self.thermal_spec, self.thermal_params)
    }

    /// Steady-state internal-air temperature with the actuator always
    /// busy — the worst case that defines the envelope.
    pub fn worst_case_temp(&self) -> Celsius {
        self.thermal_model()
            .steady_air_temp(OperatingPoint::seeking(self.rpm))
    }

    /// Steady-state node temperatures at an arbitrary operating point.
    pub fn steady_temps(&self, vcm_duty: f64) -> NodeTemps {
        self.thermal_model()
            .steady_state(OperatingPoint::new(self.rpm, vcm_duty))
    }

    /// Whether the design's worst case stays within `envelope`.
    pub fn fits_envelope(&self, envelope: Celsius) -> bool {
        self.worst_case_temp() <= envelope
    }

    /// The fastest this mechanical configuration could spin while
    /// respecting `envelope` in the worst case.
    pub fn max_rpm_within(&self, envelope: Celsius) -> Option<Rpm> {
        max_rpm_within_envelope(
            &self.thermal_model(),
            1.0,
            envelope,
            EnvelopeSearch::default(),
        )
    }

    /// Converts to a simulator disk at the design RPM.
    pub fn to_disk_spec(&self) -> DiskSpec {
        DiskSpec::new(self.geometry.clone(), self.rpm)
    }

    /// Reliability impact of running at the given actuator duty: the
    /// paper's 2×-per-15 °C failure-rate law evaluated at this design's
    /// steady temperature (§1, §6).
    pub fn reliability(&self, vcm_duty: f64) -> diskthermal::reliability::ReliabilityReport {
        diskthermal::reliability::assess(
            &self.thermal_model(),
            OperatingPoint::new(self.rpm, vcm_duty),
        )
    }
}

impl core::fmt::Display for DriveDesign {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{} @ {:.0} RPM: {}, {:.1} MB/s peak, {:.2} C worst case",
            self.geometry,
            self.rpm.get(),
            self.capacity(),
            self.max_idr().get(),
            self.worst_case_temp().get()
        )
    }
}

/// Builder for [`DriveDesign`].
#[derive(Debug, Clone, Default)]
pub struct DriveDesignBuilder {
    platter_diameter: Option<Inches>,
    platters: Option<u32>,
    zones: Option<u32>,
    rpm: Option<Rpm>,
    tech: Option<RecordingTech>,
    form_factor: FormFactor,
    ambient: Option<Celsius>,
    thermal_params: Option<ThermalParams>,
}

impl DriveDesignBuilder {
    /// Sets the platter media diameter (required).
    pub fn platter_diameter(mut self, diameter: Inches) -> Self {
        self.platter_diameter = Some(diameter);
        self
    }

    /// Sets the platter count (required).
    pub fn platters(mut self, platters: u32) -> Self {
        self.platters = Some(platters);
        self
    }

    /// Sets the ZBR zone count (required).
    pub fn zones(mut self, zones: u32) -> Self {
        self.zones = Some(zones);
        self
    }

    /// Sets the spindle speed (required).
    pub fn rpm(mut self, rpm: Rpm) -> Self {
        self.rpm = Some(rpm);
        self
    }

    /// Sets the recording technology explicitly.
    pub fn recording(mut self, tech: RecordingTech) -> Self {
        self.tech = Some(tech);
        self
    }

    /// Sets the recording technology from the paper's scaling model for
    /// a given year (alternative to [`Self::recording`]).
    pub fn densities_of_year(mut self, year: i32) -> Self {
        self.tech = Some(TechnologyTrend::default().tech(year));
        self
    }

    /// Sets the recording densities directly in KBPI/KTPI.
    pub fn densities(mut self, kbpi: f64, ktpi: f64) -> Self {
        self.tech = Some(RecordingTech::new(
            BitsPerInch::from_kbpi(kbpi),
            TracksPerInch::from_ktpi(ktpi),
        ));
        self
    }

    /// Sets the enclosure (default 3.5″).
    pub fn form_factor(mut self, form_factor: FormFactor) -> Self {
        self.form_factor = form_factor;
        self
    }

    /// Sets the external ambient temperature (default 28 °C wet bulb).
    pub fn ambient(mut self, ambient: Celsius) -> Self {
        self.ambient = Some(ambient);
        self
    }

    /// Overrides the thermal coefficients (default: calibrated).
    pub fn thermal_params(mut self, params: ThermalParams) -> Self {
        self.thermal_params = Some(params);
        self
    }

    /// Assembles the design.
    ///
    /// # Errors
    ///
    /// [`DesignError::MissingField`] when a required field is unset,
    /// [`DesignError::DoesNotFit`] when the platter exceeds the
    /// enclosure, or a wrapped [`GeometryError`].
    pub fn build(self) -> Result<DriveDesign, DesignError> {
        let diameter = self
            .platter_diameter
            .ok_or(DesignError::MissingField {
                field: "platter_diameter",
            })?;
        let platters = self.platters.ok_or(DesignError::MissingField {
            field: "platters",
        })?;
        let zones = self.zones.ok_or(DesignError::MissingField { field: "zones" })?;
        let rpm = self.rpm.ok_or(DesignError::MissingField { field: "rpm" })?;
        let tech = self.tech.ok_or(DesignError::MissingField {
            field: "recording technology",
        })?;
        if diameter > self.form_factor.max_platter() {
            return Err(DesignError::DoesNotFit {
                platter: diameter,
                form_factor: self.form_factor,
            });
        }

        let geometry = DriveGeometry::new(Platter::new(diameter), tech, platters, zones)?;
        let mut thermal_spec =
            DriveThermalSpec::new(diameter, platters).with_form_factor(self.form_factor);
        if let Some(ambient) = self.ambient {
            thermal_spec = thermal_spec.with_ambient(ambient);
        }
        let seek = SeekProfile::for_platter(diameter, geometry.used_cylinders());
        Ok(DriveDesign {
            geometry,
            rpm,
            thermal_spec,
            thermal_params: self.thermal_params.unwrap_or_default(),
            seek,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diskthermal::THERMAL_ENVELOPE;

    fn design_2002() -> DriveDesign {
        DriveDesign::builder()
            .platter_diameter(Inches::new(2.6))
            .platters(1)
            .zones(50)
            .rpm(Rpm::new(15_020.0))
            .densities_of_year(2002)
            .build()
            .unwrap()
    }

    #[test]
    fn integrated_design_reproduces_table3_anchor() {
        let d = design_2002();
        assert!(d.fits_envelope(THERMAL_ENVELOPE));
        // At the paper's required 15,098 RPM the design just exceeds it.
        let hot = DriveDesign::builder()
            .platter_diameter(Inches::new(2.6))
            .platters(1)
            .zones(50)
            .rpm(Rpm::new(15_098.0))
            .densities_of_year(2002)
            .build()
            .unwrap();
        assert!((hot.worst_case_temp().get() - 45.24).abs() < 0.5);
    }

    #[test]
    fn missing_fields_are_reported() {
        let err = DriveDesign::builder().build().unwrap_err();
        assert!(matches!(err, DesignError::MissingField { .. }));
        let err = DriveDesign::builder()
            .platter_diameter(Inches::new(2.6))
            .platters(1)
            .zones(50)
            .rpm(Rpm::new(10_000.0))
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            DesignError::MissingField {
                field: "recording technology"
            }
        ));
    }

    #[test]
    fn oversized_platter_rejected() {
        let err = DriveDesign::builder()
            .platter_diameter(Inches::new(3.3))
            .platters(1)
            .zones(30)
            .rpm(Rpm::new(10_000.0))
            .densities_of_year(2002)
            .form_factor(FormFactor::Small25)
            .build()
            .unwrap_err();
        assert!(matches!(err, DesignError::DoesNotFit { .. }));
    }

    #[test]
    fn three_faces_are_consistent() {
        let d = design_2002();
        // Capacity equals the geometry's; IDR follows eq. 4; thermal
        // model sees the same platter count.
        assert_eq!(d.capacity(), d.geometry().capacity());
        assert!(d.sustained_idr() < d.max_idr());
        assert_eq!(d.thermal_model().spec().platters(), 1);
        let disk = d.to_disk_spec();
        assert_eq!(disk.rpm(), d.rpm());
        assert_eq!(
            disk.geometry().total_sectors(),
            d.geometry().total_sectors()
        );
    }

    #[test]
    fn max_rpm_within_matches_envelope_check() {
        let d = design_2002();
        let max = d.max_rpm_within(THERMAL_ENVELOPE).expect("feasible");
        assert!((max.get() - 15_020.0).abs() < 400.0, "max {max}");
    }

    #[test]
    fn ambient_override_threads_through() {
        let cool = DriveDesign::builder()
            .platter_diameter(Inches::new(2.6))
            .platters(1)
            .zones(50)
            .rpm(Rpm::new(15_020.0))
            .densities_of_year(2002)
            .ambient(Celsius::new(23.0))
            .build()
            .unwrap();
        let base = design_2002();
        let dt = base.worst_case_temp() - cool.worst_case_temp();
        assert!((dt.get() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn reliability_follows_temperature() {
        let cool = design_2002();
        let hot = DriveDesign::builder()
            .platter_diameter(Inches::new(2.6))
            .platters(1)
            .zones(50)
            .rpm(Rpm::new(24_534.0))
            .densities_of_year(2005)
            .build()
            .unwrap();
        let r_cool = cool.reliability(1.0);
        let r_hot = hot.reliability(1.0);
        assert!(r_hot.acceleration_vs_ambient > r_cool.acceleration_vs_ambient);
        // Idling the actuator always helps longevity.
        assert!(
            hot.reliability(0.0).acceleration_vs_ambient < r_hot.acceleration_vs_ambient
        );
    }

    #[test]
    fn display_summarizes_design() {
        let text = design_2002().to_string();
        assert!(text.contains("RPM"));
        assert!(text.contains("GB"));
        assert!(text.contains("MB/s"));
    }
}
