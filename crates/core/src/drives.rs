//! The validation drive database: Table 1's thirteen SCSI drives and
//! Table 2's rated operating temperatures.

use diskgeom::{DriveGeometry, GeometryError, Platter, RecordingTech};
use diskperf::idr;
use serde::{Deserialize, Serialize};
use units::{BitsPerInch, Capacity, DataRate, Inches, Rpm, TracksPerInch};

/// One row of Table 1: a real drive's datasheet parameters and the
/// capacity/IDR the paper's model predicted for it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriveRecord {
    /// Marketing name.
    pub model: &'static str,
    /// Year of market introduction.
    pub year: i32,
    /// Spindle speed.
    pub rpm: f64,
    /// Linear density, KBPI.
    pub kbpi: f64,
    /// Track density, KTPI.
    pub ktpi: f64,
    /// Platter (media) diameter, inches.
    pub diameter: f64,
    /// Platter count.
    pub platters: u32,
    /// Datasheet capacity, GB.
    pub datasheet_capacity_gb: f64,
    /// Capacity the paper's model computed, GB.
    pub paper_model_capacity_gb: f64,
    /// Datasheet IDR, MB/s.
    pub datasheet_idr: f64,
    /// IDR the paper's model computed, MB/s.
    pub paper_model_idr: f64,
}

/// Table 1, transcribed. All rows assume `n_zones = 30`.
pub const TABLE1: [DriveRecord; 13] = [
    DriveRecord {
        model: "Quantum Atlas 10K",
        year: 1999,
        rpm: 10_000.0,
        kbpi: 256.0,
        ktpi: 13.0,
        diameter: 3.3,
        platters: 6,
        datasheet_capacity_gb: 18.0,
        paper_model_capacity_gb: 17.6,
        datasheet_idr: 39.3,
        paper_model_idr: 46.5,
    },
    DriveRecord {
        model: "IBM Ultrastar 36LZX",
        year: 1999,
        rpm: 10_000.0,
        kbpi: 352.0,
        ktpi: 20.0,
        diameter: 3.0,
        platters: 6,
        datasheet_capacity_gb: 36.0,
        paper_model_capacity_gb: 30.8,
        datasheet_idr: 56.5,
        paper_model_idr: 58.1,
    },
    DriveRecord {
        model: "Seagate Cheetah X15",
        year: 2000,
        rpm: 15_000.0,
        kbpi: 343.0,
        ktpi: 21.4,
        diameter: 2.6,
        platters: 5,
        datasheet_capacity_gb: 18.0,
        paper_model_capacity_gb: 20.1,
        datasheet_idr: 63.5,
        paper_model_idr: 73.6,
    },
    DriveRecord {
        model: "Quantum Atlas 10K II",
        year: 2000,
        rpm: 10_000.0,
        kbpi: 341.0,
        ktpi: 14.2,
        diameter: 3.3,
        platters: 3,
        datasheet_capacity_gb: 18.0,
        paper_model_capacity_gb: 12.8,
        datasheet_idr: 59.8,
        paper_model_idr: 61.9,
    },
    DriveRecord {
        model: "IBM Ultrastar 36Z15",
        year: 2001,
        rpm: 15_000.0,
        kbpi: 397.0,
        ktpi: 27.0,
        diameter: 2.6,
        platters: 6,
        datasheet_capacity_gb: 36.0,
        paper_model_capacity_gb: 35.2,
        datasheet_idr: 80.9,
        paper_model_idr: 72.1,
    },
    DriveRecord {
        model: "IBM Ultrastar 73LZX",
        year: 2001,
        rpm: 10_000.0,
        kbpi: 480.0,
        ktpi: 27.3,
        diameter: 3.3,
        platters: 3,
        datasheet_capacity_gb: 36.0,
        paper_model_capacity_gb: 34.7,
        datasheet_idr: 86.3,
        paper_model_idr: 85.2,
    },
    DriveRecord {
        model: "Seagate Barracuda 180",
        year: 2001,
        rpm: 7_200.0,
        kbpi: 490.0,
        ktpi: 31.2,
        diameter: 3.7,
        platters: 12,
        datasheet_capacity_gb: 180.0,
        paper_model_capacity_gb: 203.5,
        datasheet_idr: 63.5,
        paper_model_idr: 71.8,
    },
    DriveRecord {
        model: "Fujitsu AL-7LX",
        year: 2001,
        rpm: 15_000.0,
        kbpi: 450.0,
        ktpi: 35.0,
        diameter: 2.7,
        platters: 4,
        datasheet_capacity_gb: 36.0,
        paper_model_capacity_gb: 37.2,
        datasheet_idr: 91.8,
        paper_model_idr: 100.3,
    },
    DriveRecord {
        model: "Seagate Cheetah X15-36LP",
        year: 2001,
        rpm: 15_000.0,
        kbpi: 482.0,
        ktpi: 38.0,
        diameter: 2.6,
        platters: 4,
        datasheet_capacity_gb: 36.0,
        paper_model_capacity_gb: 40.1,
        datasheet_idr: 88.6,
        paper_model_idr: 103.4,
    },
    DriveRecord {
        model: "Seagate Cheetah 73LP",
        year: 2001,
        rpm: 10_000.0,
        kbpi: 485.0,
        ktpi: 38.0,
        diameter: 3.3,
        platters: 4,
        datasheet_capacity_gb: 73.0,
        paper_model_capacity_gb: 65.1,
        datasheet_idr: 83.9,
        paper_model_idr: 88.1,
    },
    DriveRecord {
        model: "Fujitsu AL-7LE",
        year: 2001,
        rpm: 10_000.0,
        kbpi: 485.0,
        ktpi: 39.5,
        diameter: 3.3,
        platters: 4,
        datasheet_capacity_gb: 73.0,
        paper_model_capacity_gb: 67.6,
        datasheet_idr: 84.1,
        paper_model_idr: 88.1,
    },
    DriveRecord {
        model: "Seagate Cheetah 10K.6",
        year: 2002,
        rpm: 10_000.0,
        kbpi: 570.0,
        ktpi: 64.0,
        diameter: 3.3,
        platters: 4,
        datasheet_capacity_gb: 146.0,
        paper_model_capacity_gb: 128.8,
        datasheet_idr: 105.1,
        paper_model_idr: 103.5,
    },
    DriveRecord {
        model: "Seagate Cheetah 15K.3",
        year: 2002,
        rpm: 15_000.0,
        kbpi: 533.0,
        ktpi: 64.0,
        diameter: 2.6,
        platters: 4,
        datasheet_capacity_gb: 73.0,
        paper_model_capacity_gb: 74.8,
        datasheet_idr: 111.4,
        paper_model_idr: 114.4,
    },
];

/// One row of Table 2: rated maximum operating temperatures.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RatedTemps {
    /// Marketing name.
    pub model: &'static str,
    /// Year of market introduction.
    pub year: i32,
    /// Spindle speed.
    pub rpm: f64,
    /// Specified external wet-bulb temperature, °C.
    pub external_wet_bulb: f64,
    /// Rated maximum operating temperature, °C.
    pub max_operating: f64,
}

/// Table 2, transcribed. The spread of barely 5 °C across years and
/// speeds is the paper's evidence that the thermal envelope itself does
/// not move over time.
pub const TABLE2: [RatedTemps; 4] = [
    RatedTemps {
        model: "IBM Ultrastar 36LZX",
        year: 1999,
        rpm: 10_000.0,
        external_wet_bulb: 29.4,
        max_operating: 50.0,
    },
    RatedTemps {
        model: "Seagate Cheetah X15",
        year: 2000,
        rpm: 15_000.0,
        external_wet_bulb: 28.0,
        max_operating: 55.0,
    },
    RatedTemps {
        model: "IBM Ultrastar 36Z15",
        year: 2001,
        rpm: 15_000.0,
        external_wet_bulb: 29.4,
        max_operating: 55.0,
    },
    RatedTemps {
        model: "Seagate Barracuda 180",
        year: 2001,
        rpm: 7_200.0,
        external_wet_bulb: 28.0,
        max_operating: 50.0,
    },
];

impl DriveRecord {
    /// Builds the drive's recorded geometry with the paper's Table 1
    /// assumption of 30 zones.
    ///
    /// # Errors
    ///
    /// Propagates [`GeometryError`] (never fails for the shipped rows).
    pub fn geometry(&self) -> Result<DriveGeometry, GeometryError> {
        let tech = RecordingTech::new(
            BitsPerInch::from_kbpi(self.kbpi),
            TracksPerInch::from_ktpi(self.ktpi),
        );
        DriveGeometry::new(Platter::new(Inches::new(self.diameter)), tech, self.platters, 30)
    }

    /// This library's model capacity for the drive.
    ///
    /// # Errors
    ///
    /// Propagates [`GeometryError`] (never fails for the shipped rows).
    pub fn model_capacity(&self) -> Result<Capacity, GeometryError> {
        Ok(self.geometry()?.capacity())
    }

    /// This library's model IDR for the drive.
    ///
    /// # Errors
    ///
    /// Propagates [`GeometryError`] (never fails for the shipped rows).
    pub fn model_idr(&self) -> Result<DataRate, GeometryError> {
        Ok(idr(self.geometry()?.zones(), Rpm::new(self.rpm)))
    }

    /// Relative error of our capacity model against the datasheet.
    ///
    /// # Errors
    ///
    /// Propagates [`GeometryError`] (never fails for the shipped rows).
    pub fn capacity_error(&self) -> Result<f64, GeometryError> {
        let model = self.model_capacity()?.gigabytes();
        Ok((model - self.datasheet_capacity_gb) / self.datasheet_capacity_gb)
    }

    /// Relative error of our IDR model against the datasheet.
    ///
    /// # Errors
    ///
    /// Propagates [`GeometryError`] (never fails for the shipped rows).
    pub fn idr_error(&self) -> Result<f64, GeometryError> {
        let model = self.model_idr()?.get();
        Ok((model - self.datasheet_idr) / self.datasheet_idr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirteen_drives_four_ratings() {
        assert_eq!(TABLE1.len(), 13);
        assert_eq!(TABLE2.len(), 4);
    }

    #[test]
    fn all_rows_build_geometries() -> Result<(), String> {
        for row in &TABLE1 {
            row.geometry().map_err(|e| format!("{}: {e}", row.model))?;
        }
        Ok(())
    }

    #[test]
    fn capacity_model_tracks_paper_model() {
        // Our formulation should land near the paper's own model values
        // (which themselves deviate up to ~12-13% from datasheets).
        for row in &TABLE1 {
            let ours = row.model_capacity().unwrap().gigabytes();
            let theirs = row.paper_model_capacity_gb;
            let rel = (ours - theirs).abs() / theirs;
            assert!(
                rel < 0.15,
                "{}: ours {ours:.1} GB vs paper model {theirs:.1} GB",
                row.model
            );
        }
    }

    #[test]
    fn idr_model_tracks_paper_model() {
        for row in &TABLE1 {
            let ours = row.model_idr().unwrap().get();
            let theirs = row.paper_model_idr;
            let rel = (ours - theirs).abs() / theirs;
            // Most rows agree within ~5%. The Ultrastar 36Z15 row is an
            // outlier in the paper itself (their model lands 11% *below*
            // the drive's datasheet IDR while every other row is within
            // a few percent; ours is 5% above the datasheet), so allow a
            // wider band for model-to-model comparison.
            let tolerance = if row.model == "IBM Ultrastar 36Z15" { 0.20 } else { 0.06 };
            assert!(
                rel < tolerance,
                "{}: ours {ours:.1} MB/s vs paper model {theirs:.1} MB/s",
                row.model
            );
        }
    }

    #[test]
    fn datasheet_errors_within_paper_bounds() {
        // The paper claims ~12% capacity and ~15% IDR model error; allow
        // a small margin over those bounds for our formulation.
        for row in &TABLE1 {
            let cap_err = row.capacity_error().unwrap().abs();
            assert!(cap_err < 0.35, "{}: capacity error {cap_err:.2}", row.model);
            let idr_err = row.idr_error().unwrap().abs();
            assert!(idr_err < 0.20, "{}: idr error {idr_err:.2}", row.model);
        }
    }

    #[test]
    fn envelope_constancy_claim() {
        // Table 2's point: rated maxima cluster in 50-55 C regardless of
        // year or speed.
        for r in &TABLE2 {
            assert!((50.0..=55.0).contains(&r.max_operating), "{}", r.model);
        }
    }
}
