//! `thermodisk` — an integrated capacity / performance / thermal model
//! of hard disk drives, with dynamic thermal management.
//!
//! This crate is the front door to a full reproduction of
//! *"Disk Drive Roadmap from the Thermal Perspective: A Case for Dynamic
//! Thermal Management"* (Gurumurthi, Sivasubramaniam and Natarajan,
//! 2005). It re-exports the subsystem crates and adds the glue the paper
//! itself supplies:
//!
//! - [`DriveDesign`] — one drive described once, queryable for capacity
//!   (§3.1), seek/IDR performance (§3.2) and steady/transient thermal
//!   behaviour (§3.3) in a single object;
//! - [`drives`] — the thirteen real SCSI drives of Table 1 and the
//!   rated-temperature data of Table 2, used to validate the models.
//!
//! The subsystem crates are re-exported under their own names
//! ([`geometry`], [`perf`], [`thermal`], [`roadmap`], [`sim`],
//! [`workloads`], [`dtm`]) and the most-used types through the
//! [`prelude`].
//!
//! # Quickstart
//!
//! ```
//! use thermodisk::prelude::*;
//!
//! // Design a 2002-era drive: one 2.6" platter, 50 zones, 15,000 RPM.
//! let design = DriveDesign::builder()
//!     .platter_diameter(Inches::new(2.6))
//!     .platters(1)
//!     .zones(50)
//!     .rpm(Rpm::new(15_000.0))
//!     .densities_of_year(2002)
//!     .build()?;
//!
//! // The three faces of the model:
//! assert!(design.capacity().gigabytes() > 20.0);
//! assert!(design.max_idr().get() > 100.0);
//! assert!(design.worst_case_temp() < Celsius::new(45.5));
//! assert!(design.fits_envelope(THERMAL_ENVELOPE));
//! # Ok::<(), thermodisk::DesignError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod drives;
mod model;

pub use model::{DesignError, DriveDesign, DriveDesignBuilder};

pub use diskgeom as geometry;
pub use diskperf as perf;
pub use disksim as sim;
pub use diskthermal as thermal;
pub use dtm;
pub use roadmap;
pub use units;
pub use workloads;

/// The most commonly used types, importable in one line.
pub mod prelude {
    pub use crate::drives::{self, DriveRecord};
    pub use crate::{DesignError, DriveDesign};
    pub use diskgeom::{DriveGeometry, Platter, RecordingTech, ZoneTable};
    pub use diskperf::{idr, required_rpm, SeekProfile};
    pub use disksim::{
        DiskSpec, Request, RequestKind, ResponseStats, StorageSystem, SystemConfig,
    };
    pub use diskthermal::{
        DriveThermalSpec, OperatingPoint, ThermalModel, ThermalParams, TransientSim,
        THERMAL_ENVELOPE,
    };
    pub use dtm::{DtmController, DtmPolicy, ThrottlePolicy};
    pub use roadmap::{envelope_roadmap, required_rpm_table, RoadmapConfig, TechnologyTrend};
    pub use units::{
        BitsPerInch, Capacity, Celsius, DataRate, Inches, Power, Rpm, Seconds, TempDelta,
        TracksPerInch,
    };
    pub use workloads::{presets, WorkloadPreset};
}
