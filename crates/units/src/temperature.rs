//! Temperatures and temperature differences.
//!
//! Absolute temperatures ([`Celsius`]) and differences ([`TempDelta`]) are
//! distinct types: adding two absolute temperatures is meaningless and the
//! type system forbids it, while `Celsius - Celsius -> TempDelta` and
//! `Celsius + TempDelta -> Celsius` are exactly the operations the thermal
//! model needs.

use core::ops::{Add, AddAssign, Sub};

/// An absolute temperature in degrees Celsius.
///
/// # Examples
///
/// ```
/// use units::{Celsius, TempDelta};
///
/// let ambient = Celsius::new(28.0);
/// let envelope = Celsius::new(45.22);
/// let slack: TempDelta = envelope - ambient;
/// assert!((slack.get() - 17.22).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, serde::Serialize, serde::Deserialize)]
#[serde(transparent)]
pub struct Celsius(f64);

f64_unit!(
    /// A temperature *difference* in Kelvin (equivalently, Celsius degrees).
    ///
    /// # Examples
    ///
    /// ```
    /// use units::TempDelta;
    /// let rise = TempDelta::new(5.0) + TempDelta::new(12.22);
    /// assert!((rise.get() - 17.22).abs() < 1e-12);
    /// ```
    TempDelta,
    "K"
);

impl Celsius {
    /// Wraps a raw Celsius reading.
    #[inline]
    pub const fn new(value: f64) -> Self {
        Self(value)
    }

    /// Returns the raw Celsius value.
    #[inline]
    pub const fn get(self) -> f64 {
        self.0
    }

    /// Converts to Kelvin.
    ///
    /// # Examples
    ///
    /// ```
    /// use units::Celsius;
    /// assert!((Celsius::new(0.0).to_kelvin() - 273.15).abs() < 1e-12);
    /// ```
    #[inline]
    pub fn to_kelvin(self) -> f64 {
        self.0 + 273.15
    }

    /// Builds a Celsius temperature from Kelvin.
    #[inline]
    pub fn from_kelvin(kelvin: f64) -> Self {
        Self(kelvin - 273.15)
    }

    /// Returns the smaller of two temperatures.
    #[inline]
    pub fn min(self, other: Self) -> Self {
        Self(self.0.min(other.0))
    }

    /// Returns the larger of two temperatures.
    #[inline]
    pub fn max(self, other: Self) -> Self {
        Self(self.0.max(other.0))
    }

    /// `true` when the reading is neither NaN nor infinite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }
}

impl Sub for Celsius {
    type Output = TempDelta;
    #[inline]
    fn sub(self, rhs: Self) -> TempDelta {
        TempDelta::new(self.0 - rhs.0)
    }
}

impl Add<TempDelta> for Celsius {
    type Output = Celsius;
    #[inline]
    fn add(self, rhs: TempDelta) -> Celsius {
        Celsius(self.0 + rhs.get())
    }
}

impl AddAssign<TempDelta> for Celsius {
    #[inline]
    fn add_assign(&mut self, rhs: TempDelta) {
        self.0 += rhs.get();
    }
}

impl Sub<TempDelta> for Celsius {
    type Output = Celsius;
    #[inline]
    fn sub(self, rhs: TempDelta) -> Celsius {
        Celsius(self.0 - rhs.get())
    }
}

impl core::fmt::Display for Celsius {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if let Some(prec) = f.precision() {
            write!(f, "{:.*} C", prec, self.0)
        } else {
            write!(f, "{} C", self.0)
        }
    }
}

impl From<f64> for Celsius {
    #[inline]
    fn from(value: f64) -> Self {
        Self(value)
    }
}

impl From<Celsius> for f64 {
    #[inline]
    fn from(value: Celsius) -> f64 {
        value.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kelvin_round_trip() {
        let t = Celsius::new(45.22);
        let back = Celsius::from_kelvin(t.to_kelvin());
        assert!((t.get() - back.get()).abs() < 1e-12);
    }

    #[test]
    fn delta_arithmetic() {
        let ambient = Celsius::new(28.0);
        let internal = Celsius::new(45.22);
        let delta = internal - ambient;
        assert!((delta.get() - 17.22).abs() < 1e-12);
        assert_eq!(ambient + delta, internal);
        assert_eq!(internal - delta, ambient);
    }

    #[test]
    fn add_assign_delta() {
        let mut t = Celsius::new(28.0);
        t += TempDelta::new(5.0);
        assert_eq!(t, Celsius::new(33.0));
    }

    #[test]
    fn ordering() {
        assert!(Celsius::new(55.0) > Celsius::new(45.22));
        assert_eq!(Celsius::new(50.0).max(Celsius::new(45.0)), Celsius::new(50.0));
        assert_eq!(Celsius::new(50.0).min(Celsius::new(45.0)), Celsius::new(45.0));
    }

    #[test]
    fn display() {
        assert_eq!(format!("{:.2}", Celsius::new(45.217)), "45.22 C");
        assert_eq!(format!("{:.1}", TempDelta::new(17.22)), "17.2 K");
    }
}
