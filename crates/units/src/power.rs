//! Power and thermal-circuit quantities.
//!
//! The lumped thermal model treats the drive as a small thermal circuit:
//! heat sources in [`Power`] (watts), node capacitances in
//! [`HeatCapacity`] (J/K) and couplings in [`ThermalConductance`] (W/K).
//! Cross-unit arithmetic mirrors the physics:
//!
//! - `ThermalConductance * TempDelta -> Power` (Newton's law of cooling)
//! - `Power / ThermalConductance -> TempDelta` (steady-state rise)
//! - `Power * Seconds / HeatCapacity -> TempDelta` (explicit FD update)

use crate::{Seconds, TempDelta};
use core::ops::{Div, Mul};

f64_unit!(
    /// A heat flow or dissipation rate in watts.
    ///
    /// # Examples
    ///
    /// ```
    /// use units::Power;
    /// let viscous = Power::new(0.91);
    /// let vcm = Power::new(3.9);
    /// assert!(((viscous + vcm).get() - 4.81).abs() < 1e-12);
    /// ```
    Power,
    "W"
);

f64_unit!(
    /// A lumped thermal capacitance in joules per kelvin.
    ///
    /// # Examples
    ///
    /// ```
    /// use units::HeatCapacity;
    /// // ~9 g of aluminium platter at 0.897 J/(g K)
    /// let platter = HeatCapacity::new(8.07);
    /// assert!(platter.get() > 0.0);
    /// ```
    HeatCapacity,
    "J/K"
);

f64_unit!(
    /// A thermal coupling (conductance) in watts per kelvin.
    ///
    /// For conduction through a slab this is `k * A / thickness`; for
    /// convection it is `h * A`.
    ///
    /// # Examples
    ///
    /// ```
    /// use units::{ThermalConductance, TempDelta};
    /// let ua = ThermalConductance::new(0.28);
    /// let q = ua * TempDelta::new(17.22);
    /// assert!((q.get() - 4.82).abs() < 0.01);
    /// ```
    ThermalConductance,
    "W/K"
);

impl Mul<TempDelta> for ThermalConductance {
    type Output = Power;
    #[inline]
    fn mul(self, rhs: TempDelta) -> Power {
        Power::new(self.get() * rhs.get())
    }
}

impl Div<ThermalConductance> for Power {
    type Output = TempDelta;
    #[inline]
    fn div(self, rhs: ThermalConductance) -> TempDelta {
        TempDelta::new(self.get() / rhs.get())
    }
}

impl Mul<Seconds> for Power {
    /// Energy in joules accumulated over the interval.
    type Output = f64;
    #[inline]
    fn mul(self, rhs: Seconds) -> f64 {
        self.get() * rhs.get()
    }
}

impl ThermalConductance {
    /// Series combination of two conductances (resistances add).
    ///
    /// Returns zero if either conductance is zero (an open circuit blocks
    /// the path entirely).
    ///
    /// # Examples
    ///
    /// ```
    /// use units::ThermalConductance;
    /// let a = ThermalConductance::new(2.0);
    /// let b = ThermalConductance::new(2.0);
    /// assert!((a.series(b).get() - 1.0).abs() < 1e-12);
    /// ```
    #[inline]
    pub fn series(self, other: Self) -> Self {
        let (a, b) = (self.get(), other.get());
        if a == 0.0 || b == 0.0 {
            Self::ZERO
        } else {
            Self::new(a * b / (a + b))
        }
    }

    /// Parallel combination of two conductances (conductances add).
    #[inline]
    pub fn parallel(self, other: Self) -> Self {
        self + other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn newtons_law_of_cooling() {
        let ua = ThermalConductance::new(0.5);
        let dt = TempDelta::new(10.0);
        assert_eq!(ua * dt, Power::new(5.0));
    }

    #[test]
    fn steady_state_rise() {
        let rise = Power::new(4.81) / ThermalConductance::new(0.279);
        assert!((rise.get() - 17.24).abs() < 0.01);
    }

    #[test]
    fn energy_over_interval() {
        let joules = Power::new(2.0) * Seconds::new(30.0);
        assert!((joules - 60.0).abs() < 1e-12);
    }

    #[test]
    fn series_parallel() {
        let a = ThermalConductance::new(3.0);
        let b = ThermalConductance::new(6.0);
        assert!((a.series(b).get() - 2.0).abs() < 1e-12);
        assert!((a.parallel(b).get() - 9.0).abs() < 1e-12);
        assert_eq!(a.series(ThermalConductance::ZERO), ThermalConductance::ZERO);
    }

    #[test]
    fn series_is_commutative_and_bounded() {
        let a = ThermalConductance::new(0.7);
        let b = ThermalConductance::new(1.9);
        assert!((a.series(b).get() - b.series(a).get()).abs() < 1e-15);
        assert!(a.series(b) < a.min(b));
    }
}
