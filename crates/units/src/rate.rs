//! Data-rate quantities.

use crate::{Seconds, storage::Capacity};

f64_unit!(
    /// A sustained data rate in megabytes per second (MB/s, where
    /// 1 MB = 2^20 bytes, the convention of the paper's IDR equation).
    ///
    /// # Examples
    ///
    /// ```
    /// use units::DataRate;
    /// let idr = DataRate::new(128.97);
    /// assert!(idr.get() > 100.0);
    /// ```
    DataRate,
    "MB/s"
);

impl DataRate {
    /// Bytes transferred per second.
    #[inline]
    pub fn bytes_per_sec(self) -> f64 {
        self.get() * (1u64 << 20) as f64
    }

    /// Builds from bytes per second.
    #[inline]
    pub fn from_bytes_per_sec(bps: f64) -> Self {
        Self::new(bps / (1u64 << 20) as f64)
    }

    /// Time to transfer `amount` at this rate.
    ///
    /// # Examples
    ///
    /// ```
    /// use units::{DataRate, Capacity};
    /// let rate = DataRate::new(100.0);
    /// let t = rate.transfer_time(Capacity::from_bytes(100 * (1 << 20)));
    /// assert!((t.get() - 1.0).abs() < 1e-12);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics in debug builds when the rate is not positive.
    #[inline]
    pub fn transfer_time(self, amount: Capacity) -> Seconds {
        debug_assert!(self.get() > 0.0, "transfer at a non-positive rate");
        Seconds::new(amount.bytes() as f64 / self.bytes_per_sec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Capacity;

    #[test]
    fn bytes_per_sec_round_trip() {
        let r = DataRate::new(63.5);
        let back = DataRate::from_bytes_per_sec(r.bytes_per_sec());
        assert!((r - back).abs().get() < 1e-12);
    }

    #[test]
    fn transfer_time_scales_inversely() {
        let amount = Capacity::from_bytes(8 << 20);
        let slow = DataRate::new(40.0).transfer_time(amount);
        let fast = DataRate::new(80.0).transfer_time(amount);
        assert!((slow.get() / fast.get() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn growth_target_compounds() {
        // 40% CGR: 47 MB/s in 1999 -> 128.97 MB/s in 2002.
        let base = DataRate::new(47.0);
        let target = base * 1.4f64.powi(3);
        assert!((target.get() - 128.97).abs() < 0.01);
    }
}
