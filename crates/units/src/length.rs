//! Length units. Disk-drive literature is imperial: platter diameters,
//! form factors and recording densities are all quoted in inches, so
//! [`Inches`] is the canonical length unit of the workspace.

f64_unit!(
    /// A length in inches.
    ///
    /// # Examples
    ///
    /// ```
    /// use units::Inches;
    ///
    /// let diameter = Inches::new(2.6);
    /// let radius = diameter / 2.0;
    /// assert_eq!(radius, Inches::new(1.3));
    /// ```
    Inches,
    "in"
);

/// Millimeters per inch, exact by definition.
const MM_PER_INCH: f64 = 25.4;

/// Meters per inch, exact by definition.
const M_PER_INCH: f64 = 0.0254;

impl Inches {
    /// Converts to millimeters (1 in = 25.4 mm exactly).
    ///
    /// # Examples
    ///
    /// ```
    /// use units::Inches;
    /// assert!((Inches::new(1.0).to_millimeters() - 25.4).abs() < 1e-12);
    /// ```
    #[inline]
    pub fn to_millimeters(self) -> f64 {
        self.get() * MM_PER_INCH
    }

    /// Converts to meters.
    #[inline]
    pub fn to_meters(self) -> f64 {
        self.get() * M_PER_INCH
    }

    /// Builds an [`Inches`] value from millimeters.
    ///
    /// # Examples
    ///
    /// ```
    /// use units::Inches;
    /// let platter = Inches::from_millimeters(65.0);
    /// assert!((platter.get() - 2.559).abs() < 1e-3);
    /// ```
    #[inline]
    pub fn from_millimeters(mm: f64) -> Self {
        Self::new(mm / MM_PER_INCH)
    }

    /// Builds an [`Inches`] value from meters.
    #[inline]
    pub fn from_meters(m: f64) -> Self {
        Self::new(m / M_PER_INCH)
    }

    /// Area of a circle with this value as its *radius*, in square inches.
    ///
    /// Convenience for the platter-surface computations of the capacity
    /// model, where track areas are annuli between two radii.
    ///
    /// # Examples
    ///
    /// ```
    /// use units::Inches;
    /// let a = Inches::new(1.0).circle_area();
    /// assert!((a - std::f64::consts::PI).abs() < 1e-12);
    /// ```
    #[inline]
    pub fn circle_area(self) -> f64 {
        core::f64::consts::PI * self.get() * self.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn millimeter_round_trip() {
        let x = Inches::new(3.25);
        let back = Inches::from_millimeters(x.to_millimeters());
        assert!((x - back).abs().get() < 1e-12);
    }

    #[test]
    fn meter_round_trip() {
        let x = Inches::new(0.126);
        let back = Inches::from_meters(x.to_meters());
        assert!((x - back).abs().get() < 1e-12);
    }

    #[test]
    fn known_platter_sizes() {
        // 2.5" platters are 65 mm media, 3.7" are 95 mm, 1.8" are 47 mm (to
        // the tolerances used in the VCM-power correlation of the paper).
        assert!((Inches::new(2.5).to_millimeters() - 63.5).abs() < 0.1);
        assert!((Inches::new(3.7).to_millimeters() - 93.98).abs() < 0.1);
    }

    #[test]
    fn annulus_area_is_difference_of_circles() {
        let outer = Inches::new(1.3);
        let inner = Inches::new(0.65);
        let annulus = outer.circle_area() - inner.circle_area();
        let expected = core::f64::consts::PI * (1.3f64.powi(2) - 0.65f64.powi(2));
        assert!((annulus - expected).abs() < 1e-12);
    }

    #[test]
    fn ordering_and_arithmetic() {
        assert!(Inches::new(2.6) > Inches::new(2.1));
        assert_eq!(Inches::new(2.0) + Inches::new(0.6), Inches::new(2.6));
        assert_eq!(Inches::new(2.6) * 2.0, Inches::new(5.2));
        assert!((Inches::new(2.6) / Inches::new(1.3) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn display_has_unit_suffix() {
        assert_eq!(format!("{:.1}", Inches::new(2.6)), "2.6 in");
    }
}
