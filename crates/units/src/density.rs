//! Recording-density quantities: linear density (BPI), track density
//! (TPI), their product (areal density) and their ratio (bit aspect
//! ratio), exactly as defined in §3.1 of the paper.

f64_unit!(
    /// Linear recording density along a track, in bits per inch.
    ///
    /// # Examples
    ///
    /// ```
    /// use units::BitsPerInch;
    /// let bpi = BitsPerInch::from_kbpi(270.0); // 1999 anchor
    /// assert_eq!(bpi.get(), 270_000.0);
    /// ```
    BitsPerInch,
    "BPI"
);

f64_unit!(
    /// Radial track density, in tracks per inch.
    ///
    /// # Examples
    ///
    /// ```
    /// use units::TracksPerInch;
    /// let tpi = TracksPerInch::from_ktpi(20.0); // 1999 anchor
    /// assert_eq!(tpi.get(), 20_000.0);
    /// ```
    TracksPerInch,
    "TPI"
);

f64_unit!(
    /// Areal density in bits per square inch (`BPI * TPI`).
    ///
    /// # Examples
    ///
    /// ```
    /// use units::ArealDensity;
    /// let terabit = ArealDensity::from_tb_per_sq_in(1.0);
    /// assert!(terabit.is_terabit_class());
    /// ```
    ArealDensity,
    "b/in^2"
);

f64_unit!(
    /// Bit aspect ratio, `BPI / TPI` (dimensionless).
    ///
    /// Around 6–7 for 2002-era disks, expected to drop to ~3.4 at terabit
    /// densities (§4).
    BitAspectRatio,
    "BAR"
);

impl BitsPerInch {
    /// Builds from kilobits per inch (the unit Table 1 uses).
    #[inline]
    pub fn from_kbpi(kbpi: f64) -> Self {
        Self::new(kbpi * 1e3)
    }

    /// Value in kilobits per inch.
    #[inline]
    pub fn to_kbpi(self) -> f64 {
        self.get() / 1e3
    }
}

impl TracksPerInch {
    /// Builds from kilotracks per inch (the unit Table 1 uses).
    #[inline]
    pub fn from_ktpi(ktpi: f64) -> Self {
        Self::new(ktpi * 1e3)
    }

    /// Value in kilotracks per inch.
    #[inline]
    pub fn to_ktpi(self) -> f64 {
        self.get() / 1e3
    }
}

impl ArealDensity {
    /// One terabit per square inch — the density at which the paper's ECC
    /// overhead model steps from 416 to 1440 bits per sector.
    pub const TERABIT: Self = Self::new(1e12);

    /// Builds from gigabits per square inch.
    #[inline]
    pub fn from_gb_per_sq_in(gb: f64) -> Self {
        Self::new(gb * 1e9)
    }

    /// Builds from terabits per square inch.
    #[inline]
    pub fn from_tb_per_sq_in(tb: f64) -> Self {
        Self::new(tb * 1e12)
    }

    /// Value in gigabits per square inch.
    #[inline]
    pub fn to_gb_per_sq_in(self) -> f64 {
        self.get() / 1e9
    }

    /// `true` when at (or within 1 % below) 1 Tb/in², which triggers the
    /// stronger ECC. The tolerance exists because the paper's own terabit
    /// design point — 1.85 MBPI × 540 KTPI — multiplies out to
    /// 0.999 Tb/in² and is treated as terabit-class throughout §4.
    #[inline]
    pub fn is_terabit_class(self) -> bool {
        self.get() >= 0.99 * Self::TERABIT.get()
    }
}

impl core::ops::Mul<TracksPerInch> for BitsPerInch {
    type Output = ArealDensity;
    #[inline]
    fn mul(self, rhs: TracksPerInch) -> ArealDensity {
        ArealDensity::new(self.get() * rhs.get())
    }
}

impl core::ops::Div<TracksPerInch> for BitsPerInch {
    type Output = BitAspectRatio;
    #[inline]
    fn div(self, rhs: TracksPerInch) -> BitAspectRatio {
        BitAspectRatio::new(self.get() / rhs.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn areal_density_is_product() {
        let bpi = BitsPerInch::from_kbpi(570.0);
        let tpi = TracksPerInch::from_ktpi(64.0);
        let ad = bpi * tpi;
        assert!((ad.to_gb_per_sq_in() - 36.48).abs() < 1e-9);
        assert!(!ad.is_terabit_class());
    }

    #[test]
    fn terabit_design_point() {
        // §4: 1.85 MBPI x 540 KTPI ~= 1 Tb/in^2 with BAR 3.42.
        let bpi = BitsPerInch::new(1.85e6);
        let tpi = TracksPerInch::from_ktpi(540.0);
        assert!((bpi * tpi).is_terabit_class());
        let bar = bpi / tpi;
        assert!((bar.get() - 3.4259).abs() < 1e-3);
    }

    #[test]
    fn unit_scaling_round_trips() {
        assert!((BitsPerInch::from_kbpi(256.0).to_kbpi() - 256.0).abs() < 1e-12);
        assert!((TracksPerInch::from_ktpi(13.0).to_ktpi() - 13.0).abs() < 1e-12);
        let ad = ArealDensity::from_tb_per_sq_in(0.5);
        assert!((ad.to_gb_per_sq_in() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn bar_of_2002_era_disk() {
        // Cheetah 10K.6: 570 KBPI / 64 KTPI ~ 8.9; older drives 6-20.
        let bar = BitsPerInch::from_kbpi(570.0) / TracksPerInch::from_ktpi(64.0);
        assert!(bar.get() > 3.0 && bar.get() < 25.0);
    }
}
