//! Rotational speed.

use crate::Seconds;

f64_unit!(
    /// Spindle angular velocity in rotations per minute.
    ///
    /// # Examples
    ///
    /// ```
    /// use units::Rpm;
    /// let spin = Rpm::new(15_000.0);
    /// assert_eq!(spin.rev_per_sec(), 250.0);
    /// assert!((spin.rotation_period().to_millis() - 4.0).abs() < 1e-12);
    /// ```
    Rpm,
    "RPM"
);

impl Rpm {
    /// Rotations per second.
    #[inline]
    pub fn rev_per_sec(self) -> f64 {
        self.get() / 60.0
    }

    /// Angular velocity in radians per second.
    ///
    /// # Examples
    ///
    /// ```
    /// use units::Rpm;
    /// let w = Rpm::new(60.0).rad_per_sec();
    /// assert!((w - std::f64::consts::TAU).abs() < 1e-12);
    /// ```
    #[inline]
    pub fn rad_per_sec(self) -> f64 {
        self.get() * core::f64::consts::TAU / 60.0
    }

    /// Time for one full revolution.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the speed is not positive: a stopped
    /// spindle has no rotation period.
    #[inline]
    pub fn rotation_period(self) -> Seconds {
        debug_assert!(self.get() > 0.0, "rotation period of a stopped spindle");
        Seconds::new(60.0 / self.get())
    }

    /// Average rotational latency (half a revolution), the expected wait
    /// for a random target sector.
    #[inline]
    pub fn avg_rotational_latency(self) -> Seconds {
        self.rotation_period() / 2.0
    }

    /// Linear velocity of a point at `radius_inches` from the spindle, in
    /// meters per second. This drives the internal-air circulation speed
    /// used by the thermal model's convection correlations.
    ///
    /// # Examples
    ///
    /// ```
    /// use units::{Rpm, Inches};
    /// let tip = Rpm::new(15_000.0).tip_speed(Inches::new(1.3));
    /// assert!((tip - 51.9).abs() < 0.1); // ~52 m/s at a 2.6" platter edge
    /// ```
    #[inline]
    pub fn tip_speed(self, radius_inches: crate::Inches) -> f64 {
        self.rad_per_sec() * radius_inches.to_meters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Inches;

    #[test]
    fn rev_per_sec_and_period() {
        let r = Rpm::new(10_000.0);
        assert!((r.rev_per_sec() - 166.666_666_67).abs() < 1e-6);
        assert!((r.rotation_period().to_millis() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn rotational_latency_is_half_period() {
        let r = Rpm::new(7_200.0);
        assert!((r.avg_rotational_latency().to_millis() - 4.1666667).abs() < 1e-6);
    }

    #[test]
    fn rad_per_sec() {
        assert!((Rpm::new(9_549.2965855).rad_per_sec() - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn tip_speed_scales_linearly() {
        let r = Rpm::new(15_000.0);
        let v1 = r.tip_speed(Inches::new(1.0));
        let v2 = r.tip_speed(Inches::new(2.0));
        assert!((v2 / v1 - 2.0).abs() < 1e-12);
    }
}
