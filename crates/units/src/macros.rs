//! Internal macro that generates the boilerplate shared by every
//! `f64`-backed unit newtype: constructors, accessors, ordering,
//! `Display`, scalar arithmetic, and serde support.

/// Implements the common surface of an `f64`-backed unit newtype.
///
/// Generated API per type:
/// - `new(f64) -> Self` and `get(self) -> f64`
/// - `Add`/`Sub` between two values of the same unit
/// - `Mul<f64>`/`Div<f64>` scaling and `Div<Self> -> f64` ratios
/// - `PartialOrd`, `Display` (with the given suffix), `Default` (zero)
/// - `min`/`max`/`abs`/`clamp` helpers and `is_finite`
macro_rules! f64_unit {
    ($(#[$meta:meta])* $name:ident, $suffix:expr) => {
        $(#[$meta])*
        #[derive(
            Debug,
            Clone,
            Copy,
            PartialEq,
            PartialOrd,
            Default,
            serde::Serialize,
            serde::Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(f64);

        impl $name {
            /// The zero value of this unit.
            pub const ZERO: Self = Self(0.0);

            /// Wraps a raw `f64` as this unit.
            #[inline]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// Returns the raw numeric value.
            #[inline]
            pub const fn get(self) -> f64 {
                self.0
            }

            /// Returns the smaller of `self` and `other`.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Returns the larger of `self` and `other`.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns the absolute value.
            #[inline]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Clamps the value into `[lo, hi]`.
            ///
            /// # Panics
            ///
            /// Panics if `lo > hi`.
            #[inline]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                Self(self.0.clamp(lo.0, hi.0))
            }

            /// `true` when the underlying value is neither NaN nor infinite.
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl core::ops::Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl core::ops::AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl core::ops::Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl core::ops::SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl core::ops::Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl core::ops::Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl core::ops::Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl core::ops::Div<$name> for $name {
            type Output = f64;
            #[inline]
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl core::ops::Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl core::iter::Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|v| v.0).sum())
            }
        }

        impl core::fmt::Display for $name {
            fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                if let Some(prec) = f.precision() {
                    write!(f, "{:.*} {}", prec, self.0, $suffix)
                } else {
                    write!(f, "{} {}", self.0, $suffix)
                }
            }
        }

        impl From<f64> for $name {
            #[inline]
            fn from(value: f64) -> Self {
                Self(value)
            }
        }

        impl From<$name> for f64 {
            #[inline]
            fn from(value: $name) -> f64 {
                value.0
            }
        }
    };
}
