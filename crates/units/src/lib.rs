//! Typed physical units for disk-drive modeling.
//!
//! Every quantity that crosses a crate boundary in the `thermodisk`
//! workspace is wrapped in a newtype from this crate, so that a platter
//! diameter can never be confused with an enclosure dimension, or a
//! temperature with a temperature *difference* ([C-NEWTYPE]).
//!
//! The wrappers are thin: each holds a single `f64` (or integer), is
//! `Copy`, and exposes the raw value through an accessor named after the
//! unit (e.g. [`Inches::get`], [`Rpm::get`]). Cross-unit conversions are
//! provided as `to_*` methods and arithmetic is implemented only where it
//! is dimensionally meaningful.
//!
//! # Examples
//!
//! ```
//! use units::{Inches, Rpm, Celsius, TempDelta};
//!
//! let platter = Inches::new(2.6);
//! assert!((platter.to_millimeters() - 66.04).abs() < 1e-9);
//!
//! let spin = Rpm::new(15_000.0);
//! assert!((spin.rev_per_sec() - 250.0).abs() < 1e-12);
//!
//! let ambient = Celsius::new(28.0);
//! let hot = ambient + TempDelta::new(17.22);
//! assert!((hot.get() - 45.22).abs() < 1e-12);
//! ```
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[macro_use]
mod macros;

mod density;
mod length;
mod power;
mod rate;
mod rotation;
mod storage;
mod temperature;
mod time;

pub use density::{ArealDensity, BitAspectRatio, BitsPerInch, TracksPerInch};
pub use length::Inches;
pub use power::{HeatCapacity, Power, ThermalConductance};
pub use rate::DataRate;
pub use rotation::Rpm;
pub use storage::{Bits, Capacity, SectorCount, BYTES_PER_SECTOR, RAW_BITS_PER_SECTOR};
pub use temperature::{Celsius, TempDelta};
pub use time::{Minutes, Seconds};
