//! Time units.
//!
//! Simulation timestamps and service-time components use [`Seconds`];
//! long thermal transients are more readable in [`Minutes`]. Both convert
//! freely.

f64_unit!(
    /// A duration (or simulation timestamp) in seconds.
    ///
    /// # Examples
    ///
    /// ```
    /// use units::Seconds;
    /// let seek = Seconds::from_millis(4.5);
    /// let rotation = Seconds::from_millis(2.0);
    /// assert!(((seek + rotation).to_millis() - 6.5).abs() < 1e-12);
    /// ```
    Seconds,
    "s"
);

f64_unit!(
    /// A duration in minutes.
    ///
    /// # Examples
    ///
    /// ```
    /// use units::Minutes;
    /// assert_eq!(Minutes::new(48.0).to_seconds().get(), 2880.0);
    /// ```
    Minutes,
    "min"
);

impl Seconds {
    /// Builds a duration from milliseconds.
    #[inline]
    pub fn from_millis(ms: f64) -> Self {
        Self::new(ms / 1e3)
    }

    /// Builds a duration from microseconds.
    #[inline]
    pub fn from_micros(us: f64) -> Self {
        Self::new(us / 1e6)
    }

    /// The duration expressed in milliseconds.
    #[inline]
    pub fn to_millis(self) -> f64 {
        self.get() * 1e3
    }

    /// The duration expressed in microseconds.
    #[inline]
    pub fn to_micros(self) -> f64 {
        self.get() * 1e6
    }

    /// The duration expressed in minutes.
    #[inline]
    pub fn to_minutes(self) -> Minutes {
        Minutes::new(self.get() / 60.0)
    }
}

impl Minutes {
    /// The duration expressed in seconds.
    #[inline]
    pub fn to_seconds(self) -> Seconds {
        Seconds::new(self.get() * 60.0)
    }
}

impl From<Minutes> for Seconds {
    #[inline]
    fn from(m: Minutes) -> Self {
        m.to_seconds()
    }
}

impl From<Seconds> for Minutes {
    #[inline]
    fn from(s: Seconds) -> Self {
        s.to_minutes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn milli_micro_round_trips() {
        let t = Seconds::from_millis(5.4);
        assert!((t.to_millis() - 5.4).abs() < 1e-12);
        let u = Seconds::from_micros(123.0);
        assert!((u.to_micros() - 123.0).abs() < 1e-9);
    }

    #[test]
    fn minute_conversion() {
        assert_eq!(Seconds::new(90.0).to_minutes(), Minutes::new(1.5));
        assert_eq!(Seconds::from(Minutes::new(2.0)), Seconds::new(120.0));
    }

    #[test]
    fn timestamps_accumulate() {
        let mut clock = Seconds::ZERO;
        for _ in 0..10 {
            clock += Seconds::from_millis(0.1);
        }
        assert!((clock.to_millis() - 1.0).abs() < 1e-9);
    }
}
