//! Storage quantities: raw bit counts, sector counts and byte capacities.
//!
//! The capacity model works in *raw bits on the medium* ([`Bits`], kept as
//! `f64` because they come out of analytic formulas), then quantizes to
//! 512-byte [`SectorCount`]s and reports user-visible [`Capacity`].

/// Bytes of user data per sector, fixed at 512 throughout the paper.
pub const BYTES_PER_SECTOR: u64 = 512;

/// Raw bits of user payload per sector (`8 * 512`), the divisor in the
/// paper's ZBR capacity equations.
pub const RAW_BITS_PER_SECTOR: u64 = 8 * BYTES_PER_SECTOR;

f64_unit!(
    /// A raw bit count on the recording medium.
    ///
    /// # Examples
    ///
    /// ```
    /// use units::{Bits, RAW_BITS_PER_SECTOR};
    /// let track = Bits::new(4_845_000.0);
    /// assert_eq!(track.whole_sectors(), 4_845_000 / RAW_BITS_PER_SECTOR);
    /// ```
    Bits,
    "bits"
);

impl Bits {
    /// Number of whole 512-byte sectors these bits can hold (truncating).
    #[inline]
    pub fn whole_sectors(self) -> u64 {
        debug_assert!(self.get() >= 0.0, "negative bit capacity");
        (self.get() / RAW_BITS_PER_SECTOR as f64) as u64
    }

    /// Expresses the bit count as exact bytes (fractional).
    #[inline]
    pub fn to_bytes(self) -> f64 {
        self.get() / 8.0
    }
}

/// A count of 512-byte sectors.
///
/// # Examples
///
/// ```
/// use units::SectorCount;
/// let zone = SectorCount::new(1_059);
/// assert_eq!(zone.to_capacity().bytes(), 1_059 * 512);
/// ```
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Default,
    serde::Serialize,
    serde::Deserialize,
)]
#[serde(transparent)]
pub struct SectorCount(u64);

impl SectorCount {
    /// Zero sectors.
    pub const ZERO: Self = Self(0);

    /// Wraps a raw sector count.
    #[inline]
    pub const fn new(count: u64) -> Self {
        Self(count)
    }

    /// Returns the raw count.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// The byte capacity these sectors hold.
    #[inline]
    pub const fn to_capacity(self) -> Capacity {
        Capacity::from_bytes(self.0 * BYTES_PER_SECTOR)
    }

    /// Saturating subtraction; clamps at zero instead of wrapping.
    #[inline]
    pub const fn saturating_sub(self, rhs: Self) -> Self {
        Self(self.0.saturating_sub(rhs.0))
    }
}

impl core::ops::Add for SectorCount {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl core::ops::AddAssign for SectorCount {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}

impl core::ops::Mul<u64> for SectorCount {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: u64) -> Self {
        Self(self.0 * rhs)
    }
}

impl core::iter::Sum for SectorCount {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        Self(iter.map(|v| v.0).sum())
    }
}

impl core::fmt::Display for SectorCount {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{} sectors", self.0)
    }
}

/// A byte capacity.
///
/// Stored as exact bytes; the `GB` accessors use the decimal convention
/// (`1 GB = 1e9 bytes`) that drive datasheets and Table 1 use.
///
/// # Examples
///
/// ```
/// use units::Capacity;
/// let drive = Capacity::from_gb(18.0);
/// assert_eq!(drive.bytes(), 18_000_000_000);
/// assert!((drive.gigabytes() - 18.0).abs() < 1e-12);
/// ```
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Default,
    serde::Serialize,
    serde::Deserialize,
)]
#[serde(transparent)]
pub struct Capacity(u64);

impl Capacity {
    /// Zero bytes.
    pub const ZERO: Self = Self(0);

    /// Builds from an exact byte count.
    #[inline]
    pub const fn from_bytes(bytes: u64) -> Self {
        Self(bytes)
    }

    /// Builds from decimal gigabytes (1 GB = 10⁹ bytes).
    #[inline]
    pub fn from_gb(gb: f64) -> Self {
        debug_assert!(gb >= 0.0, "negative capacity");
        Self((gb * 1e9) as u64)
    }

    /// Exact byte count.
    #[inline]
    pub const fn bytes(self) -> u64 {
        self.0
    }

    /// Capacity in decimal gigabytes.
    #[inline]
    pub fn gigabytes(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Number of whole 512-byte sectors.
    #[inline]
    pub const fn sectors(self) -> SectorCount {
        SectorCount::new(self.0 / BYTES_PER_SECTOR)
    }
}

impl core::ops::Add for Capacity {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl core::ops::AddAssign for Capacity {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}

impl core::ops::Mul<u64> for Capacity {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: u64) -> Self {
        Self(self.0 * rhs)
    }
}

impl core::iter::Sum for Capacity {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        Self(iter.map(|v| v.0).sum())
    }
}

impl core::fmt::Display for Capacity {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if let Some(prec) = f.precision() {
            write!(f, "{:.*} GB", prec, self.gigabytes())
        } else {
            write!(f, "{:.2} GB", self.gigabytes())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sector_byte_consistency() {
        let s = SectorCount::new(1000);
        assert_eq!(s.to_capacity().bytes(), 512_000);
        assert_eq!(s.to_capacity().sectors(), s);
    }

    #[test]
    fn bits_quantize_down() {
        let just_under = Bits::new((RAW_BITS_PER_SECTOR as f64) * 3.0 - 1.0);
        assert_eq!(just_under.whole_sectors(), 2);
        let exact = Bits::new((RAW_BITS_PER_SECTOR as f64) * 3.0);
        assert_eq!(exact.whole_sectors(), 3);
    }

    #[test]
    fn gigabyte_convention_is_decimal() {
        let c = Capacity::from_gb(36.0);
        assert_eq!(c.bytes(), 36_000_000_000);
    }

    #[test]
    fn capacity_arithmetic() {
        let platter = Capacity::from_gb(9.0);
        let drive = platter * 4;
        assert!((drive.gigabytes() - 36.0).abs() < 1e-9);
        let total: Capacity = (0..3).map(|_| platter).sum();
        assert!((total.gigabytes() - 27.0).abs() < 1e-9);
    }

    #[test]
    fn saturating_sub_clamps() {
        let a = SectorCount::new(5);
        let b = SectorCount::new(9);
        assert_eq!(a.saturating_sub(b), SectorCount::ZERO);
        assert_eq!(b.saturating_sub(a), SectorCount::new(4));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Capacity::from_gb(18.0)), "18.00 GB");
        assert_eq!(format!("{}", SectorCount::new(7)), "7 sectors");
    }
}
