//! Quickstart: one drive, three models, one simulation.
//!
//! Run with: `cargo run --example quickstart`

use thermodisk::prelude::*;
use units::Seconds;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe a drive once: a 2002-era server disk.
    let design = DriveDesign::builder()
        .platter_diameter(Inches::new(2.6))
        .platters(1)
        .zones(50)
        .rpm(Rpm::new(15_000.0))
        .densities_of_year(2002)
        .build()?;
    println!("design: {design}");

    // 2. Capacity model (paper §3.1).
    let breakdown = design.geometry().capacity_breakdown();
    println!("capacity: {breakdown}");

    // 3. Performance model (§3.2).
    println!(
        "peak IDR {:.1} MB/s, sustained {:.1} MB/s, avg seek {:.2} ms",
        design.max_idr().get(),
        design.sustained_idr().get(),
        design.seek().average().to_millis()
    );

    // 4. Thermal model (§3.3): worst case vs the envelope, and how much
    //    faster this mechanical platform could legally spin.
    println!(
        "worst-case temperature {:.2} (envelope {:.2}) -> fits: {}",
        design.worst_case_temp(),
        THERMAL_ENVELOPE,
        design.fits_envelope(THERMAL_ENVELOPE)
    );
    if let Some(max) = design.max_rpm_within(THERMAL_ENVELOPE) {
        println!("envelope admits up to {:.0} RPM on this platform", max.get());
    }

    // 5. Drop the design into the trace-driven simulator and serve a
    //    small random read burst.
    let mut system = StorageSystem::new(SystemConfig::single_disk(design.to_disk_spec()))?;
    let capacity = system.logical_sectors();
    for i in 0..2_000u64 {
        system.submit(Request::new(
            i,
            Seconds::from_millis(i as f64 * 5.0),
            0,
            i.wrapping_mul(2_654_435_761) % (capacity - 8),
            8,
            RequestKind::Read,
        ))?;
    }
    let done = system.drain();
    let stats = ResponseStats::from_completions(&done);
    println!("simulated 2,000 random reads: {stats}");

    Ok(())
}
