//! Closed-loop dynamic thermal management demo.
//!
//! Takes a drive designed for average-case behaviour (its worst case
//! exceeds the envelope), serves the same seek-heavy request stream
//! under three policies, and compares temperature and response time:
//!
//! - no control (the envelope is violated),
//! - VCM+RPM throttling (the Figure 6(b) mechanism),
//! - slack ramping on an envelope-design at a two-speed disk (§5.2).
//!
//! Run with: `cargo run --release --example dtm_closed_loop`

use thermodisk::prelude::*;
use units::{Seconds, TempDelta};

fn trace(capacity: u64, n: u64, rate: f64) -> Vec<Request> {
    (0..n)
        .map(|i| {
            Request::new(
                i,
                Seconds::new(i as f64 / rate),
                0,
                i.wrapping_mul(7_777_777) % (capacity - 64),
                8,
                if i % 4 == 0 { RequestKind::Write } else { RequestKind::Read },
            )
        })
        .collect()
}

fn run(label: &str, rpm: f64, policy: DtmPolicy, start_hot: bool) {
    let spec = DiskSpec::era(2002, 1, Rpm::new(rpm));
    let system = StorageSystem::new(SystemConfig::single_disk(spec)).expect("valid system");
    let capacity = system.logical_sectors();
    let model = ThermalModel::new(DriveThermalSpec::new(Inches::new(2.6), 1));

    let mut controller = DtmController::new(system, model.clone(), policy, THERMAL_ENVELOPE);
    if start_hot {
        // The drive has been busy and sits just below the envelope, so
        // the run shows the throttle cycling rather than a cold soak.
        let hot = thermodisk::thermal::NodeTemps::uniform(
            THERMAL_ENVELOPE - TempDelta::new(0.4),
        );
        controller = controller.with_initial_temps(hot);
    }

    let report = controller
        .run(trace(capacity, 6_000, 130.0))
        .expect("trace is valid");
    println!(
        "{label:<34} mean {:>7.2} ms  p95 {:>7.2} ms  peak {:>6.2} C  over-envelope {:>5.1} s  throttled {:>5.1} s  boosted {:>5.1} s",
        report.stats.mean().to_millis(),
        report.stats.percentile(95.0).to_millis(),
        report.max_air.get(),
        report.time_over_envelope.get(),
        report.time_throttled.get(),
        report.time_boosted.get(),
    );
}

fn main() {
    println!(
        "DTM closed loop: 2.6\" drive, envelope {:.2} C, 6,000 seek-heavy requests\n",
        THERMAL_ENVELOPE.get()
    );

    // An average-case design: 24,534 RPM (2005's requirement) runs past
    // the envelope if the actuator never rests.
    run(
        "24,534 RPM, no control",
        24_534.0,
        DtmPolicy::None,
        true,
    );
    run(
        "24,534 RPM, VCM+RPM throttle",
        24_534.0,
        DtmPolicy::Throttle {
            mechanism: ThrottlePolicy::VcmAndRpm {
                high: Rpm::new(24_534.0),
                low: Rpm::new(15_020.0),
            },
            guard: TempDelta::new(0.05),
            resume_margin: TempDelta::new(0.15),
        },
        true,
    );

    // The envelope design, static vs slack-ramping.
    run(
        "15,020 RPM, static (envelope)",
        15_020.0,
        DtmPolicy::None,
        false,
    );
    run(
        "15,020 RPM base + slack ramp",
        15_020.0,
        DtmPolicy::SlackRamp {
            base: Rpm::new(15_020.0),
            high: Rpm::new(26_000.0),
            slack_margin: TempDelta::new(0.5),
        },
        false,
    );

    println!(
        "\nThe throttled average-case design holds the envelope; the slack ramp\n\
         buys back response time on an envelope design whenever headroom exists."
    );
}
