//! Roadmap explorer: chart alternative technology futures.
//!
//! Reproduces the paper's roadmap machinery under three scenarios — the
//! paper's projections, an optimistic "densities never slow down" world,
//! and a pessimistic early-terabit-ECC world — and reports when each
//! platter size falls off the 40 % IDR growth curve.
//!
//! Run with: `cargo run --example roadmap_explorer`

use roadmap::{envelope_roadmap, falloff_year, RoadmapConfig, RoadmapPoint, TechnologyTrend};
use units::Inches;

fn report(label: &str, cfg: &RoadmapConfig) {
    println!("\n=== {label} ===");
    let points = envelope_roadmap(cfg);
    for &platters in &cfg.platter_counts {
        print!("  {platters} platter(s): ");
        let mut parts = Vec::new();
        for &dia in &cfg.platter_sizes {
            let series: Vec<RoadmapPoint> = points
                .iter()
                .filter(|p| p.platters == platters && p.diameter == dia)
                .copied()
                .collect();
            let text = match falloff_year(&series) {
                Some(y) => format!("{:.1}\" off at {y}", dia.get()),
                None => format!("{:.1}\" holds", dia.get()),
            };
            parts.push(text);
        }
        println!("{}", parts.join(", "));
    }
    // Capacity cost of the envelope at the end of the horizon.
    let last: Vec<&RoadmapPoint> = points
        .iter()
        .filter(|p| p.year == cfg.end_year && p.platters == 1)
        .collect();
    for p in last {
        println!(
            "  {:.1}\" single-platter in {}: best {:.0} MB/s of a {:.0} MB/s target, {:.0} GB",
            p.diameter.get(),
            cfg.end_year,
            p.max_idr.get(),
            p.idr_target.get(),
            p.capacity.gigabytes()
        );
    }
}

fn main() {
    // Scenario 1: the paper's projections.
    let paper = RoadmapConfig::default();
    report("Paper projections (BPI 30->14%, TPI 50->28%, ECC step at 1 Tb/in^2)", &paper);

    // Scenario 2: the optimistic world where densities keep their 1990s
    // growth — the envelope still kills the roadmap, just later.
    let optimistic = RoadmapConfig {
        trend: TechnologyTrend {
            slowdown_year: 2012, // never slows within the horizon
            ..TechnologyTrend::default()
        },
        ..RoadmapConfig::default()
    };
    report("No density slowdown (30%/50% CGR throughout)", &optimistic);

    // Scenario 3: a 1.3" platter option joins the lineup — how much does
    // shrinking below the paper's smallest size buy?
    let mut tiny = RoadmapConfig::default();
    tiny.platter_sizes.push(Inches::new(1.3));
    report("Adding a 1.3\" platter option", &tiny);

    println!(
        "\nTakeaway: no technology scenario sustains 40% IDR growth within the\n\
         thermal envelope — the paper's case for dynamic thermal management."
    );
}
