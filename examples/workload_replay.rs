//! Workload replay: generate a synthetic trace, persist it, reload it,
//! and replay it against two spindle speeds.
//!
//! Run with: `cargo run --release --example workload_replay [workload]`
//! where `workload` is one of `openmail`, `oltp`, `search`, `tpcc`,
//! `tpch` (default `tpcc`).

use std::io::BufReader;
use thermodisk::prelude::*;
use units::Rpm;
use workloads::{read_trace, write_trace};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let which = std::env::args().nth(1).unwrap_or_else(|| "tpcc".into());
    let preset = presets()
        .into_iter()
        .find(|p| p.name.to_lowercase().contains(&which.to_lowercase()))
        .unwrap_or_else(|| panic!("unknown workload `{which}`"));

    println!(
        "{}: {} disks{}, base {:.0} RPM",
        preset.name,
        preset.disks,
        if preset.raid.is_some() { " (RAID-5)" } else { "" },
        preset.base_rpm.get()
    );

    // Generate and persist the trace.
    let trace = preset.generate(30_000, 7)?;
    let path = std::env::temp_dir().join("thermodisk_trace.jsonl");
    write_trace(std::fs::File::create(&path)?, &trace)?;
    println!("wrote {} requests to {}", trace.len(), path.display());

    // Reload and verify fidelity.
    let restored = read_trace(BufReader::new(std::fs::File::open(&path)?))?;
    assert_eq!(trace, restored, "trace round-trips losslessly");

    // Replay at the base speed and +10K RPM.
    for rpm in [preset.base_rpm, preset.base_rpm + Rpm::new(10_000.0)] {
        let mut system = StorageSystem::new(preset.system_config(rpm)?)?;
        for r in &restored {
            system.submit(*r)?;
        }
        let done = system.drain();
        let stats = ResponseStats::from_completions(&done);
        println!("\nat {:>6.0} RPM: {stats}", rpm.get());
        println!("  response-time CDF:");
        for (edge, frac) in stats.cdf() {
            if edge.is_finite() {
                println!("    <= {edge:>5.0} ms: {:>6.1}%", frac * 100.0);
            } else {
                println!("    beyond    : {:>6.1}%", (1.0 - stats.cdf()[8].1) * 100.0);
            }
        }
    }

    std::fs::remove_file(&path).ok();
    Ok(())
}
