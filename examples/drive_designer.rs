//! Drive designer: search the mechanical design space for the best
//! envelope-respecting drive of a given year.
//!
//! Enumerates platter sizes and counts, finds each platform's maximum
//! in-envelope spindle speed, and prints the capacity/IDR frontier —
//! the decision the paper's §4.1 walks through by hand for 2005.
//!
//! Run with: `cargo run --example drive_designer [year]`

use thermodisk::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let year: i32 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("year"))
        .unwrap_or(2005);
    let trend = TechnologyTrend::default();
    let target = trend.idr_target(year);

    println!(
        "Design space for {year}: target IDR {:.1} MB/s, envelope {:.2} C",
        target.get(),
        THERMAL_ENVELOPE.get()
    );
    println!("{}", "-".repeat(86));
    println!(
        "{:>6} {:>9} | {:>11} {:>11} {:>11} {:>8} | meets target?",
        "size", "platters", "max RPM", "IDR MB/s", "capacity", "temp C"
    );
    println!("{}", "-".repeat(86));

    let mut best: Option<(f64, String)> = None;
    for &dia in &[2.6, 2.1, 1.6] {
        for platters in [1u32, 2, 4] {
            let probe = DriveDesign::builder()
                .platter_diameter(Inches::new(dia))
                .platters(platters)
                .zones(50)
                .rpm(Rpm::new(10_000.0))
                .densities_of_year(year)
                .build()?;
            let Some(max_rpm) = probe.max_rpm_within(THERMAL_ENVELOPE) else {
                println!(
                    "{:>5.1}\" {:>9} | infeasible inside the envelope at any speed",
                    dia, platters
                );
                continue;
            };
            let design = DriveDesign::builder()
                .platter_diameter(Inches::new(dia))
                .platters(platters)
                .zones(50)
                .rpm(max_rpm)
                .densities_of_year(year)
                .build()?;
            let idr = design.max_idr();
            let meets = idr.get() >= 0.985 * target.get();
            println!(
                "{:>5.1}\" {:>9} | {:>11.0} {:>11.1} {:>11} {:>8.2} | {}",
                dia,
                platters,
                max_rpm.get(),
                idr.get(),
                format!("{:.1} GB", design.capacity().gigabytes()),
                design.worst_case_temp().get(),
                if meets { "yes" } else { "no" }
            );
            if meets {
                let gb = design.capacity().gigabytes();
                let label = format!(
                    "{dia:.1}\" x{platters} at {:.0} RPM ({gb:.1} GB)",
                    max_rpm.get()
                );
                if best.as_ref().map(|(b, _)| gb > *b).unwrap_or(true) {
                    best = Some((gb, label));
                }
            }
        }
    }
    println!("{}", "-".repeat(86));
    match best {
        Some((_, label)) => println!("largest design meeting the {year} target: {label}"),
        None => println!(
            "no configuration meets the {year} target inside the envelope — \
             the roadmap has fallen off (consider DTM)"
        ),
    }
    Ok(())
}
