#!/usr/bin/env sh
# One-shot verification: build everything, run the full test suite, and
# regenerate one paper artifact end to end through the lab engine.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test -q -p disklab --test lab_determinism"
# Fleet + engine determinism: threads=1 vs threads=8 byte-identical,
# repeat runs served entirely from cache.
cargo test -q -p disklab --test lab_determinism

echo "==> cargo run --release --bin lab -- table1"
cargo run --release --bin lab -- table1

echo "==> cargo run --release --bin lab -- run fleet_routing"
# Full scale, so the regenerated artifact matches the committed
# results/fleet_routing.json byte for byte.
cargo run --release --bin lab -- run fleet_routing

echo "==> cargo test -q -p disklab --test lab_determinism trace_bytes"
# Trace determinism: the instrumented event stream must be
# byte-identical at any shard count.
cargo test -q -p disklab --test lab_determinism trace_bytes_are_identical_at_any_shard_count

echo "==> cargo run --release --bin lab -- trace figure5"
cargo run --release --bin lab -- trace figure5

echo "==> shard-scaling smoke: 4 shards byte-identical to serial"
# The parallel epoch boundary must be invisible in the results: the
# hall experiment and the raw fleet kernel both have to produce
# byte-identical payloads whether the epoch loop runs on one shard or
# many.
cargo test -q -p disklab --test lab_determinism -- \
    fleet_hall_payload_is_byte_identical_at_any_shard_count \
    fleet_shard_count_does_not_change_results

echo "==> scenario smoke: rebuild storm byte-identical at any shard count"
# Scenario injections fire in the serial stretch of the epoch boundary,
# so a rebuild storm must replay byte-identically however many shards
# the loop runs on.
cargo test -q -p disklab --test lab_determinism -- \
    scenario_rebuild_is_byte_identical_at_any_shard_count

echo "==> cargo run --release --bin lab -- bench scenario --quick"
# Scenario subsystem bench: trace-replay draw throughput plus the
# epoch-cost overhead of a rebuild storm against a clean baseline,
# gated against the committed BENCH_scenario.json.
cargo run --release --bin lab -- bench scenario --quick

echo "==> cargo run --release --bin lab -- bench surrogate --quick"
# Capacity-plan screening bench: the fitted-grid screen against the
# full simulator, with the per-candidate screening cost gated against
# the committed BENCH_surrogate.json.
cargo run --release --bin lab -- bench surrogate --quick

echo "==> cargo run --release --bin lab -- bench --quick"
# Quick bench exercises every suite (thermal kernel, storage event
# core, fleet phase split, obs, twin) and asserts two in-process
# bounds — paired null-sink fleet runs must agree to within the noise
# margin, and the hall workload's measured serial fraction must stay
# under the shard-scaling gate (the committed BENCH_fleet.json pins
# the tighter < 3%) — then diffs its re-measured rates against every
# committed BENCH_*.json baseline and exits non-zero past the
# regression tolerance. Projected shard speedups (hosts without 8
# cores) are excluded from the diff by construction.
cargo run --release --bin lab -- bench --quick

echo "==> twin smoke test (serve, 3 concurrent what-if queries, 2 runs)"
# The digital-twin server must answer concurrent pinned queries
# byte-identically — within a run (racing clients) and across two
# fresh server processes.
LAB=target/release/lab
TWIN_TMP=$(mktemp -d)
trap 'rm -rf "$TWIN_TMP"' EXIT
TWIN_QUERY='{"cmd":"whatif","inlet_delta_c":5.0,"horizon_epochs":2,"at_epoch":2}'
twin_round() {
    round="$1"
    "$LAB" twin serve --enclosures 2 --epoch-ms 1 > "$TWIN_TMP/addr.$round" &
    serve_pid=$!
    addr=""
    for _ in $(seq 1 100); do
        addr=$(sed -n 's/^twin listening on //p' "$TWIN_TMP/addr.$round")
        [ -n "$addr" ] && break
        sleep 0.1
    done
    [ -n "$addr" ] || { echo "twin server never printed its address"; exit 1; }
    "$LAB" twin query --addr "$addr" "$TWIN_QUERY" > "$TWIN_TMP/$round.a" &
    qa=$!
    "$LAB" twin query --addr "$addr" "$TWIN_QUERY" > "$TWIN_TMP/$round.b" &
    qb=$!
    "$LAB" twin query --addr "$addr" "$TWIN_QUERY" > "$TWIN_TMP/$round.c" &
    qc=$!
    wait "$qa" "$qb" "$qc"
    "$LAB" twin query --addr "$addr" '{"cmd":"shutdown"}' > /dev/null
    wait "$serve_pid"
    cmp -s "$TWIN_TMP/$round.a" "$TWIN_TMP/$round.b" || {
        echo "twin: concurrent queries disagreed in round $round"; exit 1; }
    cmp -s "$TWIN_TMP/$round.b" "$TWIN_TMP/$round.c" || {
        echo "twin: concurrent queries disagreed in round $round"; exit 1; }
    grep -q '"perturbed"' "$TWIN_TMP/$round.a" || {
        echo "twin: round $round returned no report"; cat "$TWIN_TMP/$round.a"; exit 1; }
}
twin_round 1
twin_round 2
cmp -s "$TWIN_TMP/1.a" "$TWIN_TMP/2.a" || {
    echo "twin: answers differ across server runs"; exit 1; }
echo "twin smoke test: OK"

echo "verify: OK"
