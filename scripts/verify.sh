#!/usr/bin/env sh
# One-shot verification: build everything, run the full test suite, and
# regenerate one paper artifact end to end through the lab engine.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> cargo test -q"
cargo test -q

echo "==> cargo run --release --bin lab -- table1"
cargo run --release --bin lab -- table1

echo "==> cargo run --release --bin lab -- bench --quick"
cargo run --release --bin lab -- bench --quick

echo "verify: OK"
