#!/usr/bin/env sh
# One-shot verification: build everything, run the full test suite, and
# regenerate one paper artifact end to end through the lab engine.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test -q -p disklab --test lab_determinism"
# Fleet + engine determinism: threads=1 vs threads=8 byte-identical,
# repeat runs served entirely from cache.
cargo test -q -p disklab --test lab_determinism

echo "==> cargo run --release --bin lab -- table1"
cargo run --release --bin lab -- table1

echo "==> cargo run --release --bin lab -- run fleet_routing"
# Full scale, so the regenerated artifact matches the committed
# results/fleet_routing.json byte for byte.
cargo run --release --bin lab -- run fleet_routing

echo "==> cargo test -q -p disklab --test lab_determinism trace_bytes"
# Trace determinism: the instrumented event stream must be
# byte-identical at any shard count.
cargo test -q -p disklab --test lab_determinism trace_bytes_are_identical_at_any_shard_count

echo "==> cargo run --release --bin lab -- trace figure5"
cargo run --release --bin lab -- trace figure5

echo "==> cargo run --release --bin lab -- bench --quick"
# Quick bench exercises every suite (thermal kernel, storage event
# core, fleet phase split, obs) and asserts the instrumentation-
# overhead bound: paired null-sink fleet runs must agree to within
# the noise margin.
cargo run --release --bin lab -- bench --quick

echo "verify: OK"
