#!/usr/bin/env sh
# One-shot verification: build everything, run the full test suite, and
# regenerate one paper artifact end to end through the lab engine.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test -q -p disklab --test lab_determinism"
# Fleet + engine determinism: threads=1 vs threads=8 byte-identical,
# repeat runs served entirely from cache.
cargo test -q -p disklab --test lab_determinism

echo "==> cargo run --release --bin lab -- table1"
cargo run --release --bin lab -- table1

echo "==> cargo run --release --bin lab -- run fleet_routing"
# Full scale, so the regenerated artifact matches the committed
# results/fleet_routing.json byte for byte.
cargo run --release --bin lab -- run fleet_routing

echo "==> cargo run --release --bin lab -- bench --quick"
cargo run --release --bin lab -- bench --quick

echo "verify: OK"
