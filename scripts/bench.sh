#!/usr/bin/env sh
# Benchmark baselines: times the integrators, the steady-state solver,
# end-to-end experiments, the storage event core (window loop plus
# calendar-vs-heap queue churn), the fleet event loop with its
# parallel/serial phase split, and the instrumentation overhead, then
# writes BENCH_thermal.json, BENCH_sim.json, BENCH_fleet.json, and
# BENCH_obs.json at the repo root (pass --quick for a fast smoke run
# that skips the writes and asserts the obs-overhead bound instead).
set -eu

cd "$(dirname "$0")/.."

cargo build --release
exec ./target/release/lab bench "$@"
