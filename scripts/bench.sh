#!/usr/bin/env sh
# Thermal-kernel benchmark baseline: times the integrators, the
# steady-state solver, and two end-to-end experiments, then writes the
# numbers to BENCH_thermal.json at the repo root (pass --quick for a
# fast smoke run that skips the write).
set -eu

cd "$(dirname "$0")/.."

cargo build --release
exec ./target/release/lab bench "$@"
