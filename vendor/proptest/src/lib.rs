//! Offline stand-in for `proptest`, covering the surface this
//! workspace's property tests use: the `proptest!` macro with
//! `#![proptest_config(...)]`, range/tuple/`any`/`Just`/`prop_oneof!`
//! strategies, `prop::collection::vec`, `prop_map`, and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Cases are drawn from a deterministic per-test generator (seeded from
//! the test name), so failures reproduce run over run. There is no
//! shrinking: the failing inputs are printed as-is via the assertion
//! message instead.

use std::ops::{Range, RangeInclusive};

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the inputs; the case is retried.
    Reject,
    /// `prop_assert*` failed; the test fails with this message.
    Fail(String),
}

/// The deterministic generator strategies sample from (xorshift*).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary label (e.g. the test's name).
    pub fn from_label(label: &str) -> Self {
        // FNV-1a over the label, never zero.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h | 1 }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The type this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps produced values through `f`.
    fn prop_map<U, F>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        MapStrategy { inner: self, f }
    }
}

/// The result of [`Strategy::prop_map`].
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for MapStrategy<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical full-domain strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, sign-symmetric, spanning many magnitudes.
        let mag = (rng.unit_f64() * 600.0) - 300.0;
        let sign = if rng.next_u64() & 1 == 0 { 1.0 } else { -1.0 };
        sign * 10f64.powf(mag / 10.0)
    }
}

/// The full-domain strategy for `T` — `any::<u64>()` etc.
pub struct Any<T>(std::marker::PhantomData<T>);

/// Builds the full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + (self.end - self.start) * rng.unit_f64();
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut TestRng) -> f32 {
        ((self.start as f64)..(self.end as f64)).sample(rng) as f32
    }
}

macro_rules! tuple_strategy {
    ($(($($t:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($t,)+) = self;
                ($($t.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// A uniformly weighted choice between two strategies of one value
/// type; `prop_oneof!` nests these right-associatively.
pub struct OneOf<A, B> {
    /// Total arms at this level and below (first counts as one).
    pub remaining: u64,
    /// The head strategy, picked with probability `1 / remaining`.
    pub first: A,
    /// The remaining arms.
    pub rest: B,
}

impl<A: Strategy, B: Strategy<Value = A::Value>> Strategy for OneOf<A, B> {
    type Value = A::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        if rng.next_u64().is_multiple_of(self.remaining.max(1)) {
            self.first.sample(rng)
        } else {
            self.rest.sample(rng)
        }
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A `Vec` strategy with lengths drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Vectors of `element` values with a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.clone().sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Namespaced re-exports matching `proptest::prop::*` usage.
pub mod prop {
    pub use crate::collection;
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::{
        any, collection, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume,
        prop_oneof, proptest, Any, Arbitrary, Just, OneOf, ProptestConfig, Strategy,
        TestCaseError, TestRng,
    };
}

/// Runs `cases` accepted cases of a property body.
///
/// Drives the closure the `proptest!` macro builds; rejected cases
/// (via `prop_assume!`) are retried up to ten times the case budget.
///
/// # Panics
///
/// Panics when the body reports a failure.
pub fn run_cases(
    name: &str,
    config: &ProptestConfig,
    mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    let mut rng = TestRng::from_label(name);
    let mut accepted = 0u32;
    let mut attempts = 0u32;
    let max_attempts = config.cases.saturating_mul(10).max(10);
    while accepted < config.cases && attempts < max_attempts {
        attempts += 1;
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject) => continue,
            Err(TestCaseError::Fail(msg)) => {
                panic!("property `{name}` failed on case {attempts}: {msg}")
            }
        }
    }
    assert!(
        accepted > 0,
        "property `{name}`: every generated case was rejected by prop_assume!"
    );
}

/// Defines property tests: `proptest! { #[test] fn f(x in 0..10) {...} }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run $cfg; $($rest)*);
    };
    (@run $cfg:expr; $(
        #[test]
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::run_cases(stringify!($name), &config, |__rng| {
                $(let $arg = $crate::Strategy::sample(&($strat), __rng);)*
                $body
                #[allow(unreachable_code)]
                Ok(())
            });
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run $crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Asserts inside a property body, reporting the failing expression.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {} ({:?} vs {:?})",
                stringify!($a),
                stringify!($b),
                __a,
                __b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    }};
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        if __a == __b {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($a),
                stringify!($b),
                __a
            )));
        }
    }};
}

/// Filters the current case: rejected cases are redrawn, not failed.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// Uniform choice between heterogeneous strategies with one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($a:expr $(,)?) => { $a };
    ($a:expr, $($rest:expr),+ $(,)?) => {
        $crate::OneOf {
            remaining: 1u64 + $crate::prop_oneof!(@count $($rest),+),
            first: $a,
            rest: $crate::prop_oneof!($($rest),+),
        }
    };
    (@count $a:expr) => { 1u64 };
    (@count $a:expr, $($rest:expr),+) => {
        1u64 + $crate::prop_oneof!(@count $($rest),+)
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_per_label() {
        let mut a = TestRng::from_label("x");
        let mut b = TestRng::from_label("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 5u32..10, y in -2.0f64..2.0) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y), "y out of range: {}", y);
        }

        #[test]
        fn map_and_vec_compose(
            v in collection::vec((0u8..4).prop_map(|b| b * 2), 1..6),
            flag in any::<bool>(),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 6);
            prop_assert!(v.iter().all(|&b| b % 2 == 0));
            let _ = flag;
        }

        #[test]
        fn assume_rejects_and_retries(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn oneof_samples_every_arm(pick in prop_oneof![Just(1u8), Just(2u8), Just(3u8)]) {
            prop_assert!((1..=3).contains(&pick));
        }
    }
}
