//! Offline stand-in for `serde_json`: text rendering and parsing over
//! the [`serde::Value`] tree, with the familiar `to_string` /
//! `to_string_pretty` / `from_str` entry points.

pub use serde::{Map, Number, Value};

use serde::{Deserialize, Serialize};
use std::fmt;

/// A serialization or parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn at(msg: impl Into<String>, pos: usize) -> Self {
        Error(format!("{} at byte {pos}", msg.into()))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Renders `value` as compact JSON (`{"k":1}`).
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(serde::ser::to_compact(&value.to_value()))
}

/// Renders `value` as pretty JSON with two-space indentation.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(serde::ser::to_pretty(&value.to_value()))
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Rebuilds a `T` from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    Ok(T::from_value(value)?)
}

/// Parses JSON text into a `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// Parser: recursive descent over bytes, str slices for strings.
// ---------------------------------------------------------------------------

fn parse(s: &str) -> Result<Value, Error> {
    let bytes = s.as_bytes();
    let mut pos = 0;
    skip_ws(bytes, &mut pos);
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::at("trailing characters", pos));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    match b.get(*pos) {
        None => Err(Error::at("unexpected end of input", *pos)),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Value::String),
        Some(b'[') => parse_array(b, pos),
        Some(b'{') => parse_object(b, pos),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err(Error::at(format!("unexpected character `{}`", *c as char), *pos)),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, Error> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(Error::at(format!("expected `{lit}`"), *pos))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, Error> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        // Bulk-copy the run up to the next quote or escape. The run is
        // delimited by ASCII bytes, so it sits on character boundaries
        // and only the run itself needs UTF-8 validation — not the whole
        // remaining input per character, which made parsing quadratic.
        let start = *pos;
        while let Some(&c) = b.get(*pos) {
            if c == b'"' || c == b'\\' {
                break;
            }
            *pos += 1;
        }
        if *pos > start {
            let run = std::str::from_utf8(&b[start..*pos])
                .map_err(|_| Error::at("invalid UTF-8", start))?;
            out.push_str(run);
        }
        match b.get(*pos) {
            None => return Err(Error::at("unterminated string", *pos)),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| Error::at("truncated \\u escape", *pos))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| Error::at("bad \\u escape", *pos))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| Error::at("bad \\u escape", *pos))?;
                        // Surrogate pairs are not produced by our writer;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(Error::at("bad escape", *pos)),
                }
                *pos += 1;
            }
            _ => unreachable!("run scan stops only at a quote or escape"),
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).expect("ascii digits");
    if !is_float {
        if let Ok(v) = text.parse::<u64>() {
            return Ok(Value::Number(Number::UInt(v)));
        }
        if let Ok(v) = text.parse::<i64>() {
            return Ok(Value::Number(Number::Int(v)));
        }
    }
    text.parse::<f64>()
        .map(|v| Value::Number(Number::Float(v)))
        .map_err(|_| Error::at(format!("bad number `{text}`"), start))
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        skip_ws(b, pos);
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            _ => return Err(Error::at("expected `,` or `]`", *pos)),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    *pos += 1; // '{'
    let mut map = Map::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(map));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(Error::at("expected object key", *pos));
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(Error::at("expected `:`", *pos));
        }
        *pos += 1;
        skip_ws(b, pos);
        let value = parse_value(b, pos)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(map));
            }
            _ => return Err(Error::at("expected `,` or `}`", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_round_trip() {
        let mut m = Map::new();
        m.insert("name", Value::String("lab".into()));
        m.insert("count", Value::Number(Number::UInt(3)));
        m.insert(
            "series",
            Value::Array(vec![
                Value::Number(Number::Float(1.5)),
                Value::Number(Number::Float(2.0)),
            ]),
        );
        let v = Value::Object(m);
        let compact = to_string(&v).unwrap();
        assert_eq!(compact, r#"{"name":"lab","count":3,"series":[1.5,2.0]}"#);
        let parsed: Value = from_str(&compact).unwrap();
        assert_eq!(parsed, v);
        let pretty = to_string_pretty(&v).unwrap();
        let reparsed: Value = from_str(&pretty).unwrap();
        assert_eq!(reparsed, v);
        // A second print of the parsed tree is byte-identical: the
        // cache depends on this stability.
        assert_eq!(to_string_pretty(&reparsed).unwrap(), pretty);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "line\n\ttab \"quoted\" back\\slash \u{1} unicode é";
        let json = to_string(&s.to_string()).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn integers_stay_exact() {
        let json = to_string(&u64::MAX).unwrap();
        assert_eq!(json, u64::MAX.to_string());
        let back: u64 = from_str(&json).unwrap();
        assert_eq!(back, u64::MAX);
        let neg: i64 = from_str("-42").unwrap();
        assert_eq!(neg, -42);
    }

    #[test]
    fn whole_floats_keep_decimal_point() {
        assert_eq!(to_string(&45.0f64).unwrap(), "45.0");
        assert_eq!(to_string(&-0.5f64).unwrap(), "-0.5");
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<Value>("{\"a\":}").is_err());
        assert!(from_str::<Value>("[1,2").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }
}
