//! Offline stand-in for `serde`, grown for this repository's
//! network-restricted build environment.
//!
//! Instead of serde's visitor architecture, both traits go through one
//! concrete [`Value`] tree: [`Serialize`] renders into it and
//! [`Deserialize`] reads back out of it. The derive macros
//! (`serde_derive`) generate impls against these traits, so downstream
//! code keeps its familiar `#[derive(Serialize, Deserialize)]` +
//! `serde_json::to_string` surface unchanged.

pub mod ser;
pub mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::{Map, Number, Value};

use std::fmt;

/// A deserialization error: a human-readable path/expectation message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Builds an error from any message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }

    /// "expected X while deserializing Y, found Z"-shaped error.
    pub fn expected(want: &str, target: &str, found: &Value) -> Self {
        Error(format!(
            "expected {want} while deserializing {target}, found {}",
            found.kind()
        ))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// The value tree for `self`.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parses `self` out of `v`.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Serialize impls for std types
// ---------------------------------------------------------------------------

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v < 0 {
                    Value::Number(Number::Int(v))
                } else {
                    Value::Number(Number::UInt(v as u64))
                }
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::UInt(*self as u64))
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        if self.is_finite() {
            Value::Number(Number::Float(*self))
        } else {
            Value::Null
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        (*self as f64).to_value()
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
    )*};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

// ---------------------------------------------------------------------------
// Deserialize impls for std types
// ---------------------------------------------------------------------------

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::expected("bool", "bool", v))
    }
}

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_i64()
                    .and_then(|n| <$t>::try_from(n).ok())
                    .ok_or_else(|| Error::expected("integer", stringify!($t), v))
            }
        }
    )*};
}
de_int!(i8, i16, i32, i64, isize);

macro_rules! de_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_u64()
                    .and_then(|n| <$t>::try_from(n).ok())
                    .ok_or_else(|| Error::expected("unsigned integer", stringify!($t), v))
            }
        }
    )*};
}
de_uint!(u8, u16, u32, u64, usize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Number(n) => Ok(n.as_f64()),
            // Non-finite floats serialize as null; accept the round trip.
            Value::Null => Ok(f64::NAN),
            _ => Err(Error::expected("number", "f64", v)),
        }
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::expected("string", "String", v))
    }
}

impl Deserialize for &'static str {
    /// Real serde borrows `&str` from the input document; this stand-in
    /// deserializes through an owned tree, so the string is leaked to
    /// obtain `'static`. Only types carrying static table data derive
    /// this, and they are deserialized rarely (tests), so the leak is
    /// bounded and acceptable.
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(|s| &*Box::leak(s.to_string().into_boxed_str()))
            .ok_or_else(|| Error::expected("string", "&str", v))
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::expected("array", "Vec", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = v
            .as_array()
            .ok_or_else(|| Error::expected("array", "fixed-size array", v))?;
        if items.len() != N {
            return Err(Error::custom(format!(
                "expected a {N}-element array, found {}",
                items.len()
            )));
        }
        let mut out: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        out.truncate(N);
        out.try_into()
            .map_err(|_| Error::custom("array length changed during conversion"))
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::expected("object", "BTreeMap", v))?
            .iter()
            .map(|(k, item)| Ok((k.clone(), V::from_value(item)?)))
            .collect()
    }
}

macro_rules! de_tuple {
    ($(($len:expr; $($n:tt $t:ident),+))*) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v
                    .as_array()
                    .ok_or_else(|| Error::expected("array", "tuple", v))?;
                if items.len() != $len {
                    return Err(Error::custom(format!(
                        "expected a {}-element array for a tuple, found {}",
                        $len,
                        items.len()
                    )));
                }
                Ok(($($t::from_value(&items[$n])?,)+))
            }
        }
    )*};
}
de_tuple! {
    (1; 0 A)
    (2; 0 A, 1 B)
    (3; 0 A, 1 B, 2 C)
    (4; 0 A, 1 B, 2 C, 3 D)
    (5; 0 A, 1 B, 2 C, 3 D, 4 E)
    (6; 0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(String::from_value(&"hi".to_value()).unwrap(), "hi");
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1u32, 2.5f64), (3, 4.5)];
        let back: Vec<(u32, f64)> = Deserialize::from_value(&v.to_value()).unwrap();
        assert_eq!(back, v);
        let opt: Option<u8> = None;
        assert!(opt.to_value().is_null());
        let round: Option<u8> = Deserialize::from_value(&Value::Null).unwrap();
        assert_eq!(round, None);
    }

    #[test]
    fn map_preserves_insertion_order() {
        let mut m = Map::new();
        m.insert("z", Value::Bool(true));
        m.insert("a", Value::Null);
        let keys: Vec<&String> = m.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, ["z", "a"]);
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert!(f64::NAN.to_value().is_null());
        assert!(f64::INFINITY.to_value().is_null());
    }
}
