//! JSON text writers for [`Value`]: a compact form (`{"k":1}`) and a
//! pretty form (two-space indent), both deterministic so that repeated
//! runs produce byte-identical artifacts.

use crate::value::{Number, Value};

/// Renders a finite float the way serde_json does for typical values:
/// integral values keep a trailing `.0`, everything else uses Rust's
/// shortest round-trip representation. Non-finite values become `null`.
pub fn format_f64(x: f64) -> String {
    if !x.is_finite() {
        "null".to_string()
    } else if x == x.trunc() && x.abs() < 1e16 {
        format!("{x:.1}")
    } else {
        format!("{x}")
    }
}

fn push_number(out: &mut String, n: &Number) {
    match *n {
        Number::Int(v) => out.push_str(&v.to_string()),
        Number::UInt(v) => out.push_str(&v.to_string()),
        Number::Float(v) => out.push_str(&format_f64(v)),
    }
}

/// Escapes `s` into `out` as a JSON string literal, including quotes.
pub fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Compact rendering: no whitespace, `{"k":v,...}` / `[v,...]`.
pub fn to_compact(v: &Value) -> String {
    let mut out = String::new();
    write_compact(&mut out, v);
    out
}

fn write_compact(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => push_number(out, n),
        Value::String(s) => push_escaped(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(out, item);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_escaped(out, k);
                out.push(':');
                write_compact(out, item);
            }
            out.push('}');
        }
    }
}

/// Pretty rendering with two-space indentation, matching serde_json's
/// `to_string_pretty` layout.
pub fn to_pretty(v: &Value) -> String {
    let mut out = String::new();
    write_pretty(&mut out, v, 0);
    out
}

fn write_pretty(out: &mut String, v: &Value, depth: usize) {
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, depth + 1);
                write_pretty(out, item, depth + 1);
            }
            out.push('\n');
            push_indent(out, depth);
            out.push(']');
        }
        Value::Object(map) if !map.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, depth + 1);
                push_escaped(out, k);
                out.push_str(": ");
                write_pretty(out, item, depth + 1);
            }
            out.push('\n');
            push_indent(out, depth);
            out.push('}');
        }
        other => write_compact(out, other),
    }
}

fn push_indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}
