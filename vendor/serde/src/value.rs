//! The JSON-shaped value tree every `Serialize` implementation renders
//! into and every `Deserialize` implementation reads back out of.

use std::fmt;

/// A JSON number: integers keep their exactness, everything else is `f64`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A signed integer (used for negative integers).
    Int(i64),
    /// An unsigned integer (used for all non-negative integers).
    UInt(u64),
    /// A floating-point number. Non-finite values serialize as `null`.
    Float(f64),
}

impl Number {
    /// Numeric value as `f64`, whatever the variant.
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::Int(v) => v as f64,
            Number::UInt(v) => v as f64,
            Number::Float(v) => v,
        }
    }

    /// Value as `i64` if it is an integer that fits.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::Int(v) => Some(v),
            Number::UInt(v) => i64::try_from(v).ok(),
            Number::Float(_) => None,
        }
    }

    /// Value as `u64` if it is a non-negative integer that fits.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::Int(v) => u64::try_from(v).ok(),
            Number::UInt(v) => Some(v),
            Number::Float(_) => None,
        }
    }
}

/// An insertion-ordered string-keyed map, so struct fields serialize in
/// declaration order and outputs are deterministic.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// An empty map.
    pub fn new() -> Self {
        Map { entries: Vec::new() }
    }

    /// Inserts `value` under `key`, replacing (in place) any existing entry.
    pub fn insert(&mut self, key: impl Into<String>, value: Value) -> Option<Value> {
        let key = key.into();
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Whether the map holds `key`.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut m = Map::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

/// A JSON document tree.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`
    #[default]
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Number(Number),
    /// A string.
    String(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// A key/value object (insertion-ordered).
    Object(Map),
}

impl Value {
    /// `true` for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Borrow as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Borrow as an `f64` (any numeric variant).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// Borrow as an `i64` if integral.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// Borrow as a `u64` if integral and non-negative.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// Borrow as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Borrow as an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrow as an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Mutable borrow as an object.
    pub fn as_object_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Object field lookup; `None` for non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// One-word description of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::ser::to_compact(self))
    }
}
