//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the offline
//! serde stand-in.
//!
//! Implemented directly on `proc_macro` token trees (no `syn`/`quote`,
//! which are unavailable offline). Supports the shapes this workspace
//! actually derives on: named-field structs, tuple/newtype structs
//! (including `#[serde(transparent)]`), and enums with unit, tuple, and
//! struct variants using serde's external tagging.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    ty: String,
}

enum VariantShape {
    Unit,
    Tuple(Vec<String>),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum Kind {
    NamedStruct(Vec<Field>),
    TupleStruct(Vec<String>),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    kind: Kind,
}

/// Derives `serde::Serialize` by rendering into a `serde::Value`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` by reading back out of a `serde::Value`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs_and_vis(&tokens, &mut i);

    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected `struct` or `enum`, found {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected type name, found {other:?}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde derive (offline stand-in): generic types are not supported");
    }

    let kind = match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(parse_tuple_types(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::UnitStruct,
            other => panic!("serde derive: unexpected struct body {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde derive: unexpected enum body {other:?}"),
        },
        other => panic!("serde derive: cannot derive for `{other}` items"),
    };

    Item { name, kind }
}

/// Advances past any `#[...]` attributes and a `pub` / `pub(...)` marker.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Splits a token stream at top-level commas (angle-bracket aware).
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = vec![Vec::new()];
    let mut angle_depth = 0i32;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                chunks.push(Vec::new());
                continue;
            }
            _ => {}
        }
        chunks.last_mut().expect("chunks never empty").push(tt);
    }
    chunks.retain(|c| !c.is_empty());
    chunks
}

fn tokens_to_type(tokens: &[TokenTree]) -> String {
    // Round-trip through a TokenStream so lifetimes and paths keep
    // valid spacing (`&'static str`, `Vec<(u32, f64)>`).
    tokens.iter().cloned().collect::<TokenStream>().to_string()
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    split_top_level(stream)
        .into_iter()
        .map(|chunk| {
            let mut i = 0;
            skip_attrs_and_vis(&chunk, &mut i);
            let name = match chunk.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("serde derive: expected field name, found {other:?}"),
            };
            i += 1;
            match chunk.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
                other => panic!("serde derive: expected `:` after field name, found {other:?}"),
            }
            i += 1;
            Field {
                name,
                ty: tokens_to_type(&chunk[i..]),
            }
        })
        .collect()
}

fn parse_tuple_types(stream: TokenStream) -> Vec<String> {
    split_top_level(stream)
        .into_iter()
        .map(|chunk| {
            let mut i = 0;
            skip_attrs_and_vis(&chunk, &mut i);
            tokens_to_type(&chunk[i..])
        })
        .collect()
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    split_top_level(stream)
        .into_iter()
        .map(|chunk| {
            let mut i = 0;
            skip_attrs_and_vis(&chunk, &mut i);
            let name = match chunk.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("serde derive: expected variant name, found {other:?}"),
            };
            i += 1;
            let shape = match chunk.get(i) {
                None => VariantShape::Unit,
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    VariantShape::Tuple(parse_tuple_types(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VariantShape::Named(parse_named_fields(g.stream()))
                }
                other => panic!("serde derive: unexpected variant body {other:?}"),
            };
            Variant { name, shape }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Serialize generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            let mut b = String::from("let mut __m = ::serde::Map::new();\n");
            for f in fields {
                b.push_str(&format!(
                    "__m.insert(\"{n}\", ::serde::Serialize::to_value(&self.{n}));\n",
                    n = f.name
                ));
            }
            b.push_str("::serde::Value::Object(__m)");
            b
        }
        Kind::TupleStruct(types) if types.len() == 1 => {
            // serde serializes newtype structs as their inner value.
            "::serde::Serialize::to_value(&self.0)".to_string()
        }
        Kind::TupleStruct(types) => {
            let items: Vec<String> = (0..types.len())
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Kind::UnitStruct => "::serde::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::String(String::from(\"{vn}\")),\n"
                    )),
                    VariantShape::Tuple(types) => {
                        let binds: Vec<String> =
                            (0..types.len()).map(|i| format!("__f{i}")).collect();
                        let inner = if types.len() == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({binds}) => {{\n\
                             let mut __m = ::serde::Map::new();\n\
                             __m.insert(\"{vn}\", {inner});\n\
                             ::serde::Value::Object(__m)\n\
                             }},\n",
                            binds = binds.join(", ")
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let mut inner =
                            String::from("let mut __inner = ::serde::Map::new();\n");
                        for f in fields {
                            inner.push_str(&format!(
                                "__inner.insert(\"{n}\", ::serde::Serialize::to_value({n}));\n",
                                n = f.name
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => {{\n\
                             {inner}\
                             let mut __m = ::serde::Map::new();\n\
                             __m.insert(\"{vn}\", ::serde::Value::Object(__inner));\n\
                             ::serde::Value::Object(__m)\n\
                             }},\n",
                            binds = binds.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    )
}

// ---------------------------------------------------------------------------
// Deserialize generation
// ---------------------------------------------------------------------------

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            let mut inits = String::new();
            for f in fields {
                inits.push_str(&format!(
                    "{n}: <{ty} as ::serde::Deserialize>::from_value(\
                     __m.get(\"{n}\").unwrap_or(&::serde::Value::Null))\
                     .map_err(|e| ::serde::Error::custom(\
                     format!(\"{name}.{n}: {{e}}\")))?,\n",
                    n = f.name,
                    ty = f.ty
                ));
            }
            format!(
                "let __m = __v.as_object().ok_or_else(|| \
                 ::serde::Error::expected(\"object\", \"{name}\", __v))?;\n\
                 Ok({name} {{\n{inits}}})"
            )
        }
        Kind::TupleStruct(types) if types.len() == 1 => format!(
            "Ok({name}(<{ty} as ::serde::Deserialize>::from_value(__v)?))",
            ty = types[0]
        ),
        Kind::TupleStruct(types) => {
            let n = types.len();
            let items: Vec<String> = types
                .iter()
                .enumerate()
                .map(|(i, ty)| {
                    format!("<{ty} as ::serde::Deserialize>::from_value(&__a[{i}])?")
                })
                .collect();
            format!(
                "let __a = __v.as_array().ok_or_else(|| \
                 ::serde::Error::expected(\"array\", \"{name}\", __v))?;\n\
                 if __a.len() != {n} {{\n\
                 return Err(::serde::Error::custom(\
                 format!(\"{name}: expected {n} elements, found {{}}\", __a.len())));\n\
                 }}\n\
                 Ok({name}({items}))",
                items = items.join(", ")
            )
        }
        Kind::UnitStruct => format!("Ok({name})"),
        Kind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut keyed_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => {
                        unit_arms.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),\n"));
                    }
                    VariantShape::Tuple(types) if types.len() == 1 => {
                        keyed_arms.push_str(&format!(
                            "\"{vn}\" => Ok({name}::{vn}(\
                             <{ty} as ::serde::Deserialize>::from_value(__inner)?)),\n",
                            ty = types[0]
                        ));
                    }
                    VariantShape::Tuple(types) => {
                        let n = types.len();
                        let items: Vec<String> = types
                            .iter()
                            .enumerate()
                            .map(|(i, ty)| {
                                format!("<{ty} as ::serde::Deserialize>::from_value(&__a[{i}])?")
                            })
                            .collect();
                        keyed_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let __a = __inner.as_array().ok_or_else(|| \
                             ::serde::Error::expected(\"array\", \"{name}::{vn}\", __inner))?;\n\
                             if __a.len() != {n} {{\n\
                             return Err(::serde::Error::custom(\
                             format!(\"{name}::{vn}: expected {n} elements, found {{}}\", __a.len())));\n\
                             }}\n\
                             Ok({name}::{vn}({items}))\n\
                             }},\n",
                            items = items.join(", ")
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            inits.push_str(&format!(
                                "{n}: <{ty} as ::serde::Deserialize>::from_value(\
                                 __fields.get(\"{n}\").unwrap_or(&::serde::Value::Null))\
                                 .map_err(|e| ::serde::Error::custom(\
                                 format!(\"{name}::{vn}.{n}: {{e}}\")))?,\n",
                                n = f.name,
                                ty = f.ty
                            ));
                        }
                        keyed_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let __fields = __inner.as_object().ok_or_else(|| \
                             ::serde::Error::expected(\"object\", \"{name}::{vn}\", __inner))?;\n\
                             Ok({name}::{vn} {{\n{inits}}})\n\
                             }},\n"
                        ));
                    }
                }
            }
            format!(
                "match __v {{\n\
                 ::serde::Value::String(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => Err(::serde::Error::custom(\
                 format!(\"unknown {name} variant `{{__other}}`\"))),\n\
                 }},\n\
                 ::serde::Value::Object(__m) if __m.len() == 1 => {{\n\
                 let (__tag, __inner) = __m.iter().next().expect(\"len checked\");\n\
                 match __tag.as_str() {{\n\
                 {keyed_arms}\
                 __other => Err(::serde::Error::custom(\
                 format!(\"unknown {name} variant `{{__other}}`\"))),\n\
                 }}\n\
                 }},\n\
                 __other => Err(::serde::Error::expected(\
                 \"string or single-key object\", \"{name}\", __other)),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         {body}\n}}\n\
         }}"
    )
}
