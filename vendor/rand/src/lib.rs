//! Offline stand-in for the `rand` crate surface this workspace uses:
//! `StdRng::seed_from_u64`, `Rng::gen_range` over integer and float
//! ranges, and `Rng::gen_bool`.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — fast,
//! well-distributed, and fully deterministic for a given seed (the
//! stream differs from upstream `rand`'s ChaCha-based `StdRng`, so
//! seeded traces are stable within this repository but not against
//! binaries built with the real crate).

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling methods, blanket-implemented for every source.
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Construction from a small seed.
pub trait SeedableRng: Sized {
    /// Expands a 64-bit seed into full generator state.
    fn seed_from_u64(state: u64) -> Self;
}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let v = self.start + (self.end - self.start) * unit_f64(rng.next_u64());
        // Guard the half-open contract against rounding up to `end`.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f32 {
        (self.start as f64..self.end as f64).sample_single(rng) as f32
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256**.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, the reference seeding procedure.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl StdRng {
        /// The raw xoshiro256** state, for checkpointing.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a previously captured [`state`].
        ///
        /// The restored generator continues the stream exactly where the
        /// captured one left off.
        ///
        /// [`state`]: StdRng::state
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.gen_range(0u32..=3);
            assert!(i <= 3);
        }
    }

    #[test]
    fn gen_bool_edge_probabilities() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1_000 {
            assert!(rng.gen_bool(1.0));
            assert!(!rng.gen_bool(0.0));
        }
    }

    #[test]
    fn unit_f64_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
