//! Offline stand-in for `criterion`: runs each benchmark closure for a
//! short, fixed measurement window and prints mean wall-clock time per
//! iteration. No statistics, plots, or baselines — just enough to keep
//! `cargo bench` meaningful while the real crate is unavailable.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-iteration throughput annotation.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Logical elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Times one benchmark body.
pub struct Bencher {
    /// Mean seconds per iteration, recorded by [`Bencher::iter`].
    mean_secs: f64,
}

impl Bencher {
    /// Runs `f` repeatedly for a short window and records the mean time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up and estimate a single-iteration cost.
        let warmup = Instant::now();
        black_box(f());
        let once = warmup.elapsed().max(Duration::from_nanos(1));

        let budget = Duration::from_millis(200);
        let iters = (budget.as_secs_f64() / once.as_secs_f64()).clamp(1.0, 10_000.0) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.mean_secs = start.elapsed().as_secs_f64() / iters as f64;
    }
}

fn format_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

fn report(id: &str, mean_secs: f64, throughput: Option<Throughput>) {
    let mut line = format!("{id:<44} {:>12}/iter", format_time(mean_secs));
    match throughput {
        Some(Throughput::Elements(n)) if mean_secs > 0.0 => {
            line.push_str(&format!("  {:>12.0} elem/s", n as f64 / mean_secs));
        }
        Some(Throughput::Bytes(n)) if mean_secs > 0.0 => {
            line.push_str(&format!("  {:>12.0} B/s", n as f64 / mean_secs));
        }
        _ => {}
    }
    println!("{line}");
}

/// The benchmark driver handed to each `criterion_group!` function.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { mean_secs: 0.0 };
        f(&mut b);
        report(&id, b.mean_secs, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A group of benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        let mut b = Bencher { mean_secs: 0.0 };
        f(&mut b);
        report(&full, b.mean_secs, self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group-runner function over benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut calls = 0u32;
        Criterion::default().bench_function("smoke", |b| {
            b.iter(|| calls += 1);
        });
        assert!(calls > 0);
    }

    #[test]
    fn groups_accept_throughput() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(10));
        g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
    }

    #[test]
    fn time_formatting_scales() {
        assert!(format_time(2e-9).ends_with("ns"));
        assert!(format_time(2e-5).contains("µs"));
        assert!(format_time(2e-2).ends_with("ms"));
        assert!(format_time(2.0).ends_with('s'));
    }
}
